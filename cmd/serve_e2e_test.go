// End-to-end tests for the sharded serve tier over real processes:
// dwtcli publishes shards into a store, dwserve -node processes own them
// by consistent hash, and a dwserve -route process fronts the cluster.
// Skipped under -short (they compile binaries and open sockets).
package cmd

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"dwmaxerr/internal/serve"
)

var (
	shardAddrRE  = regexp.MustCompile(`shard listener on ([0-9.:]+)`)
	routerAddrRE = regexp.MustCompile(`router over \d+ peers \(replicas \d+\) on http://([0-9.:]+)`)
)

// awaitAll scans lines until every regex has matched once, returning the
// first submatch of each in order, then keeps draining so the child
// never blocks on a full pipe.
func awaitAll(t *testing.T, r io.Reader, what string, res ...*regexp.Regexp) []string {
	t.Helper()
	found := make(chan []string, 1)
	go func() {
		out := make([]string, len(res))
		remaining := len(res)
		sc := bufio.NewScanner(r)
		for sc.Scan() {
			for i, re := range res {
				if out[i] != "" {
					continue
				}
				if m := re.FindStringSubmatch(sc.Text()); m != nil {
					out[i] = m[1]
					remaining--
				}
			}
			if remaining == 0 {
				found <- out
				for sc.Scan() {
				}
				return
			}
		}
	}()
	select {
	case v := <-found:
		return v
	case <-time.After(15 * time.Second):
		t.Fatalf("timed out waiting for %s", what)
		return nil
	}
}

// publishShards runs dwtcli -store once per key, exercising the publish
// path the serve tier loads from.
func publishShards(t *testing.T, dwtcli, dataPath, storeDir string, keys []serve.ShardKey) {
	t.Helper()
	for _, k := range keys {
		cmd := exec.Command(dwtcli,
			"-in", dataPath, "-algo", "greedyabs",
			"-budget", strconv.Itoa(k.B),
			"-store", storeDir, "-dataset", k.Dataset, "-metric", k.Metric)
		b, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("dwtcli -store (%s): %v\n%s", k, err, b)
		}
		if !strings.Contains(string(b), "shard       "+k.String()) {
			t.Fatalf("dwtcli did not report publishing %s:\n%s", k, b)
		}
	}
}

// serveNode is one dwserve -node child process.
type serveNode struct {
	name      string
	cmd       *exec.Cmd
	shardAddr string
	metrics   string
}

func startServeNode(t *testing.T, bin, name, nodes, store string, replicas int, shardListen string) *serveNode {
	t.Helper()
	cmd := exec.Command(bin,
		"-node", name, "-nodes", nodes, "-store", store,
		"-replicas", strconv.Itoa(replicas),
		"-shard-listen", shardListen, "-listen", "127.0.0.1:0")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	proc := cmd
	t.Cleanup(func() { proc.Process.Kill(); proc.Wait() })
	addrs := awaitAll(t, stderr, "node "+name+" listeners", shardAddrRE, metricsAddrRE)
	return &serveNode{name: name, cmd: cmd, shardAddr: addrs[0], metrics: addrs[1]}
}

func startServeRouter(t *testing.T, bin string, peers []string, replicas int) string {
	t.Helper()
	cmd := exec.Command(bin,
		"-route", "-peers", strings.Join(peers, ","),
		"-replicas", strconv.Itoa(replicas), "-listen", "127.0.0.1:0")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	proc := cmd
	t.Cleanup(func() { proc.Process.Kill(); proc.Wait() })
	return awaitAll(t, stderr, "router listener", routerAddrRE)[0]
}

func routerGet(t *testing.T, url string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, body
}

func shardQueryURL(routerAddr string, k serve.ShardKey) string {
	return fmt.Sprintf("http://%s/point?i=3&dataset=%s&b=%d&metric=%s",
		routerAddr, k.Dataset, k.B, k.Metric)
}

// awaitStatus polls a router query until it answers the wanted status —
// covering the window where the router is still backing off from a dead
// or restarting peer.
func awaitStatus(t *testing.T, url string, want int) (http.Header, []byte) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		status, hdr, body := routerGet(t, url)
		if status == want {
			return hdr, body
		}
		if time.Now().After(deadline) {
			t.Fatalf("GET %s: status %d, want %d (body %s)", url, status, want, body)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestServeClusterShardPlacement runs a 3-node sharded cluster as real
// processes behind a real router and proves, by scraping each node's
// /debug/vars, that queries land exactly where an independently
// computed ring says they must. It then kills one node, restarts it on
// the same address, and checks the router reconnects and the node
// rewarms its shard cache from the store.
func TestServeClusterShardPlacement(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e: skipped in -short mode")
	}
	dir := t.TempDir()
	dwtcli := buildCmd(t, dir, "dwtcli")
	dwserve := buildCmd(t, dir, "dwserve")
	dataPath, _ := writeDataset(t, dir, 512)

	keys := []serve.ShardKey{
		{Dataset: "taxi", B: 16, Metric: "greedyabs"},
		{Dataset: "taxi", B: 32, Metric: "greedyabs"},
		{Dataset: "taxi", B: 64, Metric: "greedyabs"},
		{Dataset: "light", B: 16, Metric: "greedyabs"},
		{Dataset: "light", B: 32, Metric: "greedyabs"},
		{Dataset: "light", B: 64, Metric: "greedyabs"},
	}
	storeDir := t.TempDir()
	publishShards(t, dwtcli, dataPath, storeDir, keys)

	// The test's own view of placement: same member list, same defaults.
	names := []string{"n1", "n2", "n3"}
	ring := serve.NewRing(0, names...)
	owned := map[string]int{}
	for _, k := range keys {
		owned[ring.Owner(k)]++
	}

	nodes := map[string]*serveNode{}
	var peers []string
	for _, name := range names {
		n := startServeNode(t, dwserve, name, strings.Join(names, ","), storeDir, 1, "127.0.0.1:0")
		nodes[name] = n
		peers = append(peers, name+"="+n.shardAddr)
	}
	routerAddr := startServeRouter(t, dwserve, peers, 1)

	// One query per key; every answer must come from the ring owner.
	for _, k := range keys {
		status, hdr, body := routerGet(t, shardQueryURL(routerAddr, k))
		if status != http.StatusOK {
			t.Fatalf("query %s: status %d: %s", k, status, body)
		}
		if got, want := hdr.Get("X-Dwserve-Node"), ring.Owner(k); got != want {
			t.Errorf("query %s answered by %q, ring owner is %q", k, got, want)
		}
	}

	// Per-node metrics must agree with the locally computed placement:
	// each node warmed and answered exactly its owned keys, and no query
	// ever reached a non-owner.
	for _, name := range names {
		snap, err := scrapeVars(nodes[name].metrics)
		if err != nil {
			t.Fatalf("node %s: %v", name, err)
		}
		if got := snap.Counters["serve_shard_queries"]; got != int64(owned[name]) {
			t.Errorf("node %s answered %d queries, owns %d keys", name, got, owned[name])
		}
		if got := snap.Counters["serve_shard_not_owned"]; got != 0 {
			t.Errorf("node %s rejected %d stray queries, want 0", name, got)
		}
		if got := snap.Gauges["serve_shard_warm"]; got != int64(owned[name]) {
			t.Errorf("node %s has %d shards warm, owns %d", name, got, owned[name])
		}
	}

	// Kill the owner of keys[0] and restart it on the same address; the
	// router must reconnect once its backoff expires, and the reborn
	// node must rewarm from the store.
	victim := ring.Owner(keys[0])
	old := nodes[victim]
	old.cmd.Process.Kill()
	old.cmd.Wait()
	status, _, _ := routerGet(t, shardQueryURL(routerAddr, keys[0]))
	if status != http.StatusServiceUnavailable {
		t.Fatalf("query against the dead owner answered %d, want 503", status)
	}
	reborn := startServeNode(t, dwserve, victim, strings.Join(names, ","), storeDir, 1, old.shardAddr)
	hdr, _ := awaitStatus(t, shardQueryURL(routerAddr, keys[0]), http.StatusOK)
	if got := hdr.Get("X-Dwserve-Node"); got != victim {
		t.Errorf("post-restart query answered by %q, want %q", got, victim)
	}
	snap, err := scrapeVars(reborn.metrics)
	if err != nil {
		t.Fatal(err)
	}
	if got := snap.Gauges["serve_shard_warm"]; got != int64(owned[victim]) {
		t.Errorf("restarted node has %d shards warm, want %d rewarmed from the store", got, owned[victim])
	}
	if got := snap.Counters["serve_shard_queries"]; got < 1 {
		t.Error("restarted node answered no queries")
	}
}

// TestServeClusterFailover kills the primary of an R=2 shard and checks
// the router fails over to the surviving replica without the client
// ever seeing an error.
func TestServeClusterFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e: skipped in -short mode")
	}
	dir := t.TempDir()
	dwtcli := buildCmd(t, dir, "dwtcli")
	dwserve := buildCmd(t, dir, "dwserve")
	dataPath, _ := writeDataset(t, dir, 512)

	key := serve.ShardKey{Dataset: "taxi", B: 32, Metric: "greedyabs"}
	storeDir := t.TempDir()
	publishShards(t, dwtcli, dataPath, storeDir, []serve.ShardKey{key})

	names := []string{"east", "west"}
	owners := serve.NewRing(0, names...).Owners(key, 2)
	nodes := map[string]*serveNode{}
	var peers []string
	for _, name := range names {
		n := startServeNode(t, dwserve, name, strings.Join(names, ","), storeDir, 2, "127.0.0.1:0")
		nodes[name] = n
		peers = append(peers, name+"="+n.shardAddr)
	}
	routerAddr := startServeRouter(t, dwserve, peers, 2)
	url := shardQueryURL(routerAddr, key)

	status, hdr, before := routerGet(t, url)
	if status != http.StatusOK {
		t.Fatalf("pre-kill query: status %d: %s", status, before)
	}
	if got := hdr.Get("X-Dwserve-Node"); got != owners[0] {
		t.Fatalf("pre-kill query answered by %q, want primary %q", got, owners[0])
	}
	if got := hdr.Get("X-Dwserve-Role"); got != "primary" {
		t.Fatalf("pre-kill role %q, want primary", got)
	}

	primary := nodes[owners[0]]
	primary.cmd.Process.Kill()
	primary.cmd.Wait()

	// Every post-kill query must still answer — first by failing over
	// mid-connection, then by skipping the known-dead primary — with a
	// payload identical to the primary's (replicas hold the same shard).
	for i := 0; i < 5; i++ {
		hdr, body := awaitStatus(t, url, http.StatusOK)
		if got := hdr.Get("X-Dwserve-Node"); got != owners[1] {
			t.Fatalf("post-kill query %d answered by %q, want replica %q", i, got, owners[1])
		}
		if got := hdr.Get("X-Dwserve-Role"); got != "replica-1" {
			t.Fatalf("post-kill query %d role %q, want replica-1", i, got)
		}
		if string(body) != string(before) {
			t.Fatalf("failover changed the answer:\n  primary %s\n  replica %s", before, body)
		}
	}

	// The router's own metrics (it shares the query listener) recorded
	// the failover.
	snap, err := scrapeVars(routerAddr)
	if err != nil {
		t.Fatal(err)
	}
	if got := snap.Counters["serve_failover_total"]; got < 1 {
		t.Errorf("router recorded %d failovers, want >= 1", got)
	}
	if got := snap.Counters["serve_route_queries"]; got < 6 {
		t.Errorf("router recorded %d queries, want >= 6", got)
	}
}
