// End-to-end smoke tests over the real binaries: a two-worker TCP
// cluster built from cmd/dwworker with its /debug/vars metrics endpoint
// scraped mid-session, and cmd/dwtcli's -trace export of a full
// DIndirectHaar build. Skipped under -short (they compile binaries and
// open sockets).
package cmd

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"dwmaxerr/internal/dataset"
	"dwmaxerr/internal/dist"
	"dwmaxerr/internal/mr"
	"dwmaxerr/internal/obs"
)

// buildCmd compiles ./cmd/<name> into dir and returns the binary path.
func buildCmd(t *testing.T, dir, name string) string {
	t.Helper()
	out := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
	cmd.Dir = ".."
	if b, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/%s: %v\n%s", name, err, b)
	}
	return out
}

// writeDataset saves a deterministic random vector as binary float64.
func writeDataset(t *testing.T, dir string, n int) (string, []float64) {
	t.Helper()
	rnd := rand.New(rand.NewSource(42))
	data := make([]float64, n)
	for i := range data {
		data[i] = rnd.Float64() * 1000
	}
	path := filepath.Join(dir, "data.bin")
	if err := dataset.SaveBinary(path, data); err != nil {
		t.Fatal(err)
	}
	return path, data
}

// awaitLine scans lines until re matches, returning the first submatch.
func awaitLine(t *testing.T, r io.Reader, re *regexp.Regexp, what string) string {
	t.Helper()
	found := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(r)
		for sc.Scan() {
			if m := re.FindStringSubmatch(sc.Text()); m != nil {
				found <- m[1]
				// Keep draining so the child never blocks on a full pipe.
				for sc.Scan() {
				}
				return
			}
		}
	}()
	select {
	case v := <-found:
		return v
	case <-time.After(15 * time.Second):
		t.Fatalf("timed out waiting for %s", what)
		return ""
	}
}

var metricsAddrRE = regexp.MustCompile(`metrics on http://([^/]+)/debug/vars`)

// scrapeVars fetches and decodes one /debug/vars snapshot.
func scrapeVars(addr string) (obs.Snapshot, error) {
	var snap obs.Snapshot
	resp, err := http.Get("http://" + addr + "/debug/vars")
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return snap, fmt.Errorf("/debug/vars: status %d", resp.StatusCode)
	}
	err = json.NewDecoder(resp.Body).Decode(&snap)
	return snap, err
}

// traceDoc mirrors the Chrome trace-event file layout.
type traceDoc struct {
	TraceEvents []struct {
		Name string  `json:"name"`
		Ph   string  `json:"ph"`
		Ts   float64 `json:"ts"`
		Dur  float64 `json:"dur"`
	} `json:"traceEvents"`
}

func readTrace(t *testing.T, path string) traceDoc {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc traceDoc
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" || e.Dur < 0 || e.Ts < 0 {
			t.Fatalf("malformed trace event %+v", e)
		}
	}
	return doc
}

// TestClusterWorkersEndToEnd drives a real DGreedyAbs job over two
// dwworker processes, scrapes their /debug/vars while they are alive,
// and checks the recorded span tree covers every task attempt.
func TestClusterWorkersEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e: skipped in -short mode")
	}
	dir := t.TempDir()
	dwworker := buildCmd(t, dir, "dwworker")
	dataPath, _ := writeDataset(t, dir, 512)

	c, err := mr.NewCoordinator("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var metricsAddrs []string
	for i := 0; i < 2; i++ {
		w := exec.Command(dwworker,
			"-join", c.Addr(), "-name", fmt.Sprintf("w%d", i),
			"-metrics", "127.0.0.1:0")
		stderr, err := w.StderrPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Start(); err != nil {
			t.Fatal(err)
		}
		proc := w
		t.Cleanup(func() { proc.Process.Kill(); proc.Wait() })
		metricsAddrs = append(metricsAddrs,
			awaitLine(t, stderr, metricsAddrRE, "worker metrics address"))
	}
	if err := c.WaitForWorkers(2, 15*time.Second); err != nil {
		t.Fatal(err)
	}

	tracer := obs.NewTracer()
	root := tracer.Start("e2e-dgreedyabs")
	c.Options = mr.JobOptions{Trace: root}
	rep, err := dist.DGreedyAbsCluster(c, dataPath, 64, 32, 0)
	root.End()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Synopsis.Size() == 0 || rep.Synopsis.Size() > 64 {
		t.Fatalf("synopsis has %d terms, want 1..64", rep.Synopsis.Size())
	}

	// Workers are still connected (the coordinator has not closed), so
	// their metrics endpoints reflect the finished job.
	var executed int64
	for i, addr := range metricsAddrs {
		// Heartbeats are periodic; poll until the worker's first one.
		var snap obs.Snapshot
		deadline := time.Now().Add(10 * time.Second)
		for {
			snap, err = scrapeVars(addr)
			if err != nil {
				t.Fatalf("worker %d: %v", i, err)
			}
			if snap.Counters["mr_worker_heartbeats_sent"] >= 1 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("worker %d sent no heartbeats: %v", i, snap.Counters)
			}
			time.Sleep(50 * time.Millisecond)
		}
		if snap.Counters["mr_wire_bytes_received"] <= 0 {
			t.Fatalf("worker %d recorded no wire traffic", i)
		}
		executed += snap.Counters["mr_worker_tasks_executed"]
	}
	attempts := 0
	for _, j := range rep.Jobs {
		attempts += len(j.MapStats) + len(j.ReduceStats)
	}
	if executed < int64(attempts) {
		t.Fatalf("workers report %d executed tasks, coordinator committed %d attempts", executed, attempts)
	}

	// The span tree covers every committed task attempt of every job.
	spans := 0
	jobs := 0
	root.Walk(func(s *obs.Span) {
		switch {
		case s.Name() == "map" || s.Name() == "reduce":
			spans++
		case strings.HasPrefix(s.Name(), "job:"):
			jobs++
		}
	})
	if jobs != len(rep.Jobs) {
		t.Fatalf("trace has %d job spans, report has %d jobs", jobs, len(rep.Jobs))
	}
	if spans != attempts {
		t.Fatalf("trace has %d task-attempt spans, metrics report %d attempts", spans, attempts)
	}

	tracePath := filepath.Join(dir, "cluster-trace.json")
	if err := tracer.WriteChromeTraceFile(tracePath); err != nil {
		t.Fatal(err)
	}
	doc := readTrace(t, tracePath)
	if len(doc.TraceEvents) < attempts {
		t.Fatalf("trace file has %d events, want >= %d", len(doc.TraceEvents), attempts)
	}
}

// TestCoordinatorProcessTrace runs the dwworker coordinator mode as a
// real process with -trace and checks it completes and writes a valid
// trace file.
func TestCoordinatorProcessTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e: skipped in -short mode")
	}
	dir := t.TempDir()
	dwworker := buildCmd(t, dir, "dwworker")
	dataPath, _ := writeDataset(t, dir, 512)
	tracePath := filepath.Join(dir, "trace.json")

	coord := exec.Command(dwworker,
		"-coordinate", "127.0.0.1:0", "-workers", "2",
		"-data", dataPath, "-budget", "64", "-subtree", "32",
		"-algo", "dgreedyabs", "-trace", tracePath)
	stderr, err := coord.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	coord.Stdout = &out
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Process.Kill() })
	addr := awaitLine(t, stderr,
		regexp.MustCompile(`coordinating on ([0-9.:]+)`), "coordinator address")

	for i := 0; i < 2; i++ {
		w := exec.Command(dwworker, "-join", addr, "-name", fmt.Sprintf("w%d", i))
		w.Stderr = io.Discard
		if err := w.Start(); err != nil {
			t.Fatal(err)
		}
		proc := w
		t.Cleanup(func() { proc.Process.Kill(); proc.Wait() })
	}
	if err := coord.Wait(); err != nil {
		t.Fatalf("coordinator failed: %v", err)
	}
	if !strings.Contains(out.String(), "synopsis:") {
		t.Fatalf("coordinator output missing synopsis summary:\n%s", out.String())
	}
	doc := readTrace(t, tracePath)
	var maps, jobs int
	for _, e := range doc.TraceEvents {
		switch {
		case e.Name == "map":
			maps++
		case strings.HasPrefix(e.Name, "job:"):
			jobs++
		}
	}
	if jobs != 4 {
		t.Fatalf("trace has %d job spans, DGreedyAbs pipeline runs 4 jobs", jobs)
	}
	if maps < 16 {
		t.Fatalf("trace has %d map spans, want >= 16 (one per 32-leaf sub-tree)", maps)
	}
}

// TestDwtcliTraceDIndirectHaar is the acceptance check for the -trace
// flag: a full DIndirectHaar build through the CLI must emit valid
// Chrome trace-event JSON with per-layer DP spans.
func TestDwtcliTraceDIndirectHaar(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e: skipped in -short mode")
	}
	dir := t.TempDir()
	dwtcli := buildCmd(t, dir, "dwtcli")
	dataPath, _ := writeDataset(t, dir, 512)
	tracePath := filepath.Join(dir, "trace.json")

	cmd := exec.Command(dwtcli,
		"-in", dataPath, "-algo", "dindirecthaar",
		"-budget", "64", "-subtree", "32", "-delta", "10",
		"-trace", tracePath)
	if b, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("dwtcli: %v\n%s", err, b)
	}
	doc := readTrace(t, tracePath)
	var layers, probes, tasks int
	sawAlg := false
	for _, e := range doc.TraceEvents {
		switch {
		case strings.HasPrefix(e.Name, "layer-up:"):
			layers++
		case strings.HasPrefix(e.Name, "probe:"):
			probes++
		case e.Name == "map" || e.Name == "reduce":
			tasks++
		case e.Name == "dindirect-haar":
			sawAlg = true
		}
	}
	if !sawAlg {
		t.Fatal("trace has no dindirect-haar span")
	}
	if layers == 0 || probes == 0 || tasks == 0 {
		t.Fatalf("trace missing spans: %d layer-up, %d probe, %d task", layers, probes, tasks)
	}
}
