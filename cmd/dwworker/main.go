// Command dwworker runs one MapReduce worker process or the coordinator of
// a TCP cluster.
//
// Start a coordinator that builds a synopsis once enough workers joined:
//
//	dwworker -coordinate :7077 -workers 3 -data nyct.bin -budget 4096 \
//	         -subtree 1024 -algo dgreedyabs
//
// Start workers (on any machine that can reach the coordinator and the
// shared data path):
//
//	dwworker -join host:7077 -name w1
//
// Workers heartbeat the coordinator and drain gracefully on SIGINT/SIGTERM
// or on the coordinator's shutdown broadcast. The coordinator detects
// silent workers via heartbeats (-heartbeat-timeout), bounds attempts with
// a per-task deadline (-task-timeout), and can speculatively re-execute
// straggling tasks (-speculate).
//
// Supported -algo values: con (conventional synopsis, Appendix A.1) and
// dgreedyabs (the paper's Algorithm 6, all four jobs on the cluster).
//
// A co-located deployment can skip TCP framing entirely: -local N attaches
// N shared-memory workers inside the coordinator process (tasks and
// replies cross an in-memory channel, no serialization). -workers counts
// TCP joiners on top of those: pass -workers 0 to run with only
// shared-memory workers, or combine both for a mixed fleet:
//
//	dwworker -coordinate :7077 -workers 0 -local 4 -data nyct.bin
//
// For resilience drills, -chaos seed,spec arms the deterministic fault
// injector (see internal/chaos) in this process, -reconnect-max lets a
// worker survive coordinator connection loss by re-dialing with jittered
// backoff, and -rejoin-grace makes a coordinator tolerate a transient
// all-workers-dead window while they re-dial:
//
//	dwworker -join host:7077 -name w1 -reconnect-max 8 \
//	         -chaos '42,mr.worker.send:corrupt#3'
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"dwmaxerr/internal/chaos"
	"dwmaxerr/internal/dist"
	"dwmaxerr/internal/mr"
	"dwmaxerr/internal/obs"
)

func main() {
	var (
		join      = flag.String("join", "", "coordinator address to join as a worker")
		name      = flag.String("name", "worker", "worker name")
		coord     = flag.String("coordinate", "", "listen address for coordinator mode")
		workers   = flag.Int("workers", 1, "coordinator: workers to wait for")
		data      = flag.String("data", "", "coordinator: binary float64 dataset path (shared with workers)")
		budget    = flag.Int("budget", 0, "coordinator: synopsis size B (default N/8)")
		subtree   = flag.Int("subtree", 1024, "coordinator: sub-tree leaves per map task")
		algo      = flag.String("algo", "dgreedyabs", "coordinator: algorithm (con or dgreedyabs)")
		timeout   = flag.Duration("timeout", time.Minute, "coordinator: worker join timeout")
		taskTO    = flag.Duration("task-timeout", 0, "coordinator: per-task attempt deadline (0 = default 2m)")
		hbTO      = flag.Duration("heartbeat-timeout", 0, "coordinator: heartbeat silence before a worker is declared dead (0 = default 3s)")
		speculate = flag.Duration("speculate", 0, "coordinator: launch a backup attempt for tasks in flight longer than this (0 = off)")
		metrics   = flag.String("metrics", "", "serve /debug/vars and /debug/pprof on this address (e.g. 127.0.0.1:0)")
		tracePath = flag.String("trace", "", "coordinator: write the job span tree as Chrome trace-event JSON to this path")
		chaosSpec = flag.String("chaos", "", "arm the fault injector: 'seed,point:fault[=dur][@prob][#nth][xmax];...'")
		reconnMax = flag.Int("reconnect-max", 0, "worker: consecutive failed re-dials before giving up (0 = exit on connection loss)")
		rejoin    = flag.Duration("rejoin-grace", 0, "coordinator: tolerate an all-workers-dead window this long while workers re-dial (0 = fail fast)")
		localW    = flag.Int("local", 0, "coordinator: shared-memory workers to run in-process (skip TCP framing for co-located workers)")
	)
	flag.Parse()

	if *chaosSpec != "" {
		if err := chaos.EnableSpec(*chaosSpec); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "dwworker: chaos armed: %s\n", *chaosSpec)
	}

	if *metrics != "" {
		if err := serveMetrics(*metrics); err != nil {
			fatal(err)
		}
	}

	switch {
	case *join != "":
		fmt.Fprintf(os.Stderr, "dwworker: joining %s as %q (jobs: %v)\n", *join, *name, mr.RegisteredJobs())
		// Translate SIGINT/SIGTERM into a graceful stop: the worker finishes
		// its in-flight task, the connection closes, and Serve returns nil.
		stop := make(chan struct{})
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sig
			fmt.Fprintln(os.Stderr, "dwworker: signal received, draining")
			close(stop)
		}()
		if err := mr.ServeWorker(*join, *name, stop, mr.WorkerOptions{
			ReconnectMax: *reconnMax,
		}); err != nil {
			fatal(err)
		}
	case *coord != "":
		if *data == "" {
			fatal(fmt.Errorf("-data is required in coordinator mode"))
		}
		src, err := dist.NewFileSource(*data)
		if err != nil {
			fatal(err)
		}
		b := *budget
		if b == 0 {
			b = src.N() / 8
		}
		c, err := mr.NewCoordinator(*coord)
		if err != nil {
			fatal(err)
		}
		defer c.Close()
		c.TaskTimeout = *taskTO
		c.HeartbeatTimeout = *hbTO
		c.SpeculationAfter = *speculate
		c.RejoinGrace = *rejoin
		var tracer *obs.Tracer
		var root *obs.Span
		if *tracePath != "" {
			tracer = obs.NewTracer()
			root = tracer.Start("dwworker:" + *algo)
			c.Options = mr.JobOptions{Trace: root}
		}
		for i := 0; i < *localW; i++ {
			if _, err := c.AttachLocalWorker(fmt.Sprintf("local%d", i)); err != nil {
				fatal(err)
			}
		}
		// -workers counts TCP joiners on top of the -local fleet; the
		// attached shared-memory workers are already live, so the wait
		// target is the combined fleet size.
		if *workers > 0 {
			fmt.Fprintf(os.Stderr, "dwworker: coordinating on %s, waiting for %d workers\n", c.Addr(), *workers)
			if err := c.WaitForWorkers(*localW+*workers, *timeout); err != nil {
				fatal(err)
			}
		}
		t0 := time.Now()
		var rep *dist.Report
		switch *algo {
		case "con":
			rep, err = dist.CONCluster(c, *data, b, *subtree)
		case "dgreedyabs":
			rep, err = dist.DGreedyAbsCluster(c, *data, b, *subtree, 0)
		default:
			fatal(fmt.Errorf("unknown -algo %q (con, dgreedyabs)", *algo))
		}
		if err != nil {
			fatal(err)
		}
		if *tracePath != "" {
			root.End()
			if err := tracer.WriteChromeTraceFile(*tracePath); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "dwworker: trace written to %s\n", *tracePath)
		}
		var shuffled int64
		var mapRetries, reduceRetries int
		counters := map[string]int64{}
		for _, j := range rep.Jobs {
			shuffled += j.ShuffleBytes
			mapRetries += j.MapRetries
			reduceRetries += j.ReduceRetries
			for k, v := range j.UserCounters {
				counters[k] += v
			}
		}
		fmt.Printf("%s synopsis: %d coefficients in %v (%d jobs, %d bytes shuffled, max_abs %.4g)\n",
			*algo, rep.Synopsis.Size(), time.Since(t0).Round(time.Millisecond),
			len(rep.Jobs), shuffled, rep.MaxErr)
		fmt.Printf("retries: %d map, %d reduce\n", mapRetries, reduceRetries)
		names := make([]string, 0, len(counters))
		for k := range counters {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, k := range names {
			fmt.Printf("  counter %s = %d\n", k, counters[k])
		}
		for i, term := range rep.Synopsis.Terms {
			if i >= 10 {
				fmt.Printf("... (%d more)\n", rep.Synopsis.Size()-10)
				break
			}
			fmt.Printf("  c[%d] = %g\n", term.Index, term.Value)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// serveMetrics exposes /debug/vars and /debug/pprof on addr in the
// background, printing the bound address (addr may use port 0) so test
// harnesses can scrape it.
func serveMetrics(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	mux := http.NewServeMux()
	obs.Mount(mux, obs.Default)
	fmt.Fprintf(os.Stderr, "dwworker: metrics on http://%s/debug/vars\n", ln.Addr())
	go func() {
		if err := http.Serve(ln, mux); err != nil {
			fmt.Fprintln(os.Stderr, "dwworker: metrics server:", err)
		}
	}()
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dwworker:", err)
	os.Exit(1)
}
