// Command dwgen generates the synthetic datasets of the paper's evaluation
// (uniform, zipf-0.7, zipf-1.5, NYCT-like, WD-like) as binary float64 or
// CSV files, optionally padded to a power-of-two length.
//
// Usage:
//
//	dwgen -gen nyct -n 1048576 -out nyct.bin
//	dwgen -gen uniform -max 100000 -n 65536 -format csv -out u.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"dwmaxerr/internal/dataset"
)

func main() {
	var (
		gen    = flag.String("gen", "uniform", "generator: uniform, zipf0.7, zipf1.5, nyct, nyct-outliers, wd")
		n      = flag.Int("n", 1<<16, "number of values (padded up to a power of two unless -no-pad)")
		max    = flag.Float64("max", 1000, "value range [0,max] for the synthetic generators")
		seed   = flag.Int64("seed", 1, "random seed")
		out    = flag.String("out", "", "output path (default stdout)")
		format = flag.String("format", "bin", "output format: bin (little-endian float64) or csv")
		noPad  = flag.Bool("no-pad", false, "do not pad to a power-of-two length")
		stats  = flag.Bool("stats", false, "print Table 3-style statistics to stderr")
	)
	flag.Parse()

	g, err := dataset.ByName(*gen, *max)
	if err != nil {
		fatal(err)
	}
	data := g.Generate(*n, *seed)
	if !*noPad {
		data, _ = dataset.PadToPowerOfTwo(data)
	}
	if *stats {
		s := dataset.Summarize(data)
		fmt.Fprintf(os.Stderr, "%s: records=%d avg=%.2f stdv=%.2f min=%g max=%g\n",
			g.Name(), s.Records, s.Avg, s.Stdv, s.Min, s.Max)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "bin":
		err = dataset.WriteBinary(w, data)
	case "csv":
		err = dataset.WriteCSV(w, data)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dwgen:", err)
	os.Exit(1)
}
