#!/usr/bin/env bash
# Coverage ratchet for the engine packages: fails when the combined
# statement coverage of internal/mr + internal/dist drops below the
# committed floor in scripts/coverage_floor.txt.
#
#   scripts/coverage.sh            # check against the floor (CI runs this)
#   scripts/coverage.sh -update    # rewrite the floor to current coverage
#
# The floor is deliberately a little below measured coverage so benign
# churn doesn't flake; raise it via -update when coverage improves.
set -euo pipefail
cd "$(dirname "$0")/.."

profile=$(mktemp)
trap 'rm -f "$profile"' EXIT
go test -count=1 -coverprofile="$profile" ./internal/mr/ ./internal/dist/ >/dev/null
total=$(go tool cover -func="$profile" | awk '/^total:/ {sub(/%/, "", $3); print $3}')

if [ "${1:-}" = "-update" ]; then
    echo "$total" > scripts/coverage_floor.txt
    echo "coverage floor updated to ${total}%"
    exit 0
fi

floor=$(cat scripts/coverage_floor.txt)
echo "internal/mr + internal/dist coverage: ${total}% (floor: ${floor}%)"
awk -v t="$total" -v f="$floor" 'BEGIN { exit !(t+0 >= f+0) }' || {
    echo "FAIL: coverage ${total}% fell below the committed floor ${floor}%" >&2
    echo "(if the drop is intentional, lower scripts/coverage_floor.txt in the same change)" >&2
    exit 1
}
