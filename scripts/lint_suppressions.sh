#!/bin/sh
# Regenerate the dwlint suppression budget. Every //dwlint:ignore
# directive in the tree must be listed in scripts/lint_suppressions.txt;
# CI fails on untracked additions, so adding a suppression means
# rerunning this script and committing the diff — a reviewed act, not a
# drive-by.
set -eu
cd "$(dirname "$0")/.."
{
	echo "# dwlint suppression budget. Regenerate with scripts/lint_suppressions.sh."
	echo "# Format: <file> <analyzers> -- <reason>. CI fails on suppressions not listed here."
	go run ./tools/dwlint -suppressions-dump ./...
} > scripts/lint_suppressions.txt
echo "wrote scripts/lint_suppressions.txt:"
grep -cv '^#' scripts/lint_suppressions.txt || true
