package dwmaxerr

// End-to-end pipeline test: generate a dataset, stage it on disk, build
// the synopsis with the full cluster DGreedyAbs (TCP workers), persist it
// in the binary format, serve it over HTTP, and verify queries against the
// ground truth — every deliverable surface in one flow.

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"dwmaxerr/internal/dataset"
	"dwmaxerr/internal/dist"
	"dwmaxerr/internal/mr"
	"dwmaxerr/internal/serve"
	"dwmaxerr/internal/synopsis"
)

func TestEndToEndPipeline(t *testing.T) {
	const (
		n       = 1 << 12
		budget  = n / 8
		subtree = 1 << 8
	)
	// 1. Generate and stage the dataset.
	data := dataset.NYCTLike{}.Generate(n, 77)
	dir := t.TempDir()
	path := filepath.Join(dir, "trips.bin")
	if err := dataset.SaveBinary(path, data); err != nil {
		t.Fatal(err)
	}

	// 2. Bring up a TCP cluster and build the synopsis with DGreedyAbs.
	coord, err := mr.NewCoordinator("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	stop := make(chan struct{})
	defer close(stop)
	for i := 0; i < 3; i++ {
		go mr.Serve(coord.Addr(), "itest-worker", stop)
	}
	if err := coord.WaitForWorkers(3, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	rep, err := dist.DGreedyAbsCluster(coord, path, budget, subtree, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Synopsis.Size() > budget {
		t.Fatalf("size %d > budget %d", rep.Synopsis.Size(), budget)
	}
	// The reported error must match a direct measurement.
	actual := synopsis.MaxAbsError(rep.Synopsis, data)
	if math.Abs(actual-rep.MaxErr) > 1e-9*(1+actual) {
		t.Fatalf("cluster reported %g, direct measurement %g", rep.MaxErr, actual)
	}

	// 3. Persist and reload in the binary format.
	synPath := filepath.Join(dir, "trips.synopsis")
	var buf bytes.Buffer
	if err := WriteSynopsis(&buf, rep.Synopsis); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(synPath, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(synPath)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadSynopsis(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Size() != rep.Synopsis.Size() || loaded.N != n {
		t.Fatalf("reloaded synopsis differs: %d terms over %d", loaded.Size(), loaded.N)
	}

	// 4. Serve over HTTP and spot-check guaranteed answers.
	srv, err := serve.New(loaded, rep.MaxErr)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	for _, k := range []int{0, 7, 999, n - 1} {
		resp, err := http.Get(ts.URL + "/point?i=" + strconv.Itoa(k))
		if err != nil {
			t.Fatal(err)
		}
		var ans serve.PointAnswer
		if err := json.NewDecoder(resp.Body).Decode(&ans); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if ans.Lo == nil || data[k] < *ans.Lo-1e-9 || data[k] > *ans.Hi+1e-9 {
			t.Fatalf("point %d: exact %g outside served interval [%v, %v]", k, data[k], ans.Lo, ans.Hi)
		}
	}
	resp, err := http.Get(ts.URL + "/range?lo=100&hi=1123")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rng serve.RangeAnswer
	if err := json.NewDecoder(resp.Body).Decode(&rng); err != nil {
		t.Fatal(err)
	}
	exact := 0.0
	for _, v := range data[100:1124] {
		exact += v
	}
	if rng.SumLo == nil || exact < *rng.SumLo-1e-6 || exact > *rng.SumHi+1e-6 {
		t.Fatalf("range sum %g outside served interval [%v, %v]", exact, rng.SumLo, rng.SumHi)
	}
	relOff := math.Abs(rng.Sum-exact) / exact
	if relOff > 0.10 {
		t.Fatalf("range estimate %g is %.1f%% off exact %g", rng.Sum, 100*relOff, exact)
	}
}

func TestEndToEndStreamingIngest(t *testing.T) {
	// Stream ingestion → conventional synopsis → identical to the batch
	// path over the same data.
	const n = 1 << 10
	data := dataset.WDLike{}.Generate(n, 3)
	i := 0
	streamed, err := StreamConventional(n, n/8, func() (float64, bool) {
		if i >= n {
			return 0, false
		}
		v := data[i]
		i++
		return v, true
	})
	if err != nil {
		t.Fatal(err)
	}
	batch, err := Build(data, Conventional, Options{Budget: n / 8})
	if err != nil {
		t.Fatal(err)
	}
	se, _ := Evaluate(streamed, data, 1)
	be, _ := Evaluate(batch.Synopsis, data, 1)
	if se.L2 != be.L2 || se.MaxAbs != be.MaxAbs {
		t.Fatalf("streamed errors %+v != batch %+v", se, be)
	}
}
