// Cluster demo: the same synopsis job executed by real TCP workers. A
// coordinator and three worker processes (here: goroutines speaking actual
// TCP on localhost) split a file-backed dataset into error-tree-aligned
// chunks, run the CON map tasks remotely, and the driver merges the
// significance streams — the paper's Appendix A.1 pipeline end to end.
// The result is verified against the in-process engine.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"dwmaxerr"
	"dwmaxerr/internal/dataset"
	"dwmaxerr/internal/dist"
	"dwmaxerr/internal/mr"
)

func main() {
	const (
		n       = 1 << 14
		budget  = n / 8
		subtree = 1 << 10
		workers = 3
	)
	// Stage the dataset on the "shared filesystem".
	dir, err := os.MkdirTemp("", "dwmaxerr-cluster")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "taxi.bin")
	data := dataset.NYCTLike{}.Generate(n, 99)
	if err := dataset.SaveBinary(path, data); err != nil {
		log.Fatal(err)
	}

	// Coordinator + workers over real TCP.
	coord, err := mr.NewCoordinator("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer coord.Close()
	stop := make(chan struct{})
	defer close(stop)
	for i := 0; i < workers; i++ {
		name := fmt.Sprintf("worker-%d", i)
		go func() {
			if err := mr.Serve(coord.Addr(), name, stop); err != nil {
				log.Printf("%s: %v", name, err)
			}
		}()
	}
	if err := coord.WaitForWorkers(workers, 5*time.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster up: coordinator %s, %d workers\n", coord.Addr(), workers)

	t0 := time.Now()
	rep, err := dist.CONCluster(coord, path, budget, subtree)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster CON: %d map tasks, %.1f KiB shuffled, %v wall\n",
		rep.Jobs[0].MapTasks, float64(rep.Jobs[0].ShuffleBytes)/1024, time.Since(t0).Round(time.Millisecond))

	// Cross-check against the in-process engine.
	local, err := dwmaxerr.BuildDistributed(dwmaxerr.SliceSource(data), dwmaxerr.CON,
		dwmaxerr.Options{Budget: budget, SubtreeLeaves: subtree})
	if err != nil {
		log.Fatal(err)
	}
	if rep.Synopsis.Size() != local.Synopsis.Size() {
		log.Fatalf("cluster size %d != local %d", rep.Synopsis.Size(), local.Synopsis.Size())
	}
	lm := local.Synopsis.Map()
	for _, term := range rep.Synopsis.Terms {
		if lm[term.Index] != term.Value {
			log.Fatalf("coefficient %d differs: %g vs %g", term.Index, term.Value, lm[term.Index])
		}
	}
	errs, _ := dwmaxerr.Evaluate(rep.Synopsis, data, 1)
	fmt.Printf("cluster and local synopses identical (%d terms); max_abs=%.1f L2=%.2f ✓\n",
		rep.Synopsis.Size(), errs.MaxAbs, errs.L2)
}
