// Quickstart: build a maximum-error wavelet synopsis of the paper's
// running example and compare it against the conventional (L2-optimal)
// selection of the same size.
package main

import (
	"fmt"
	"log"

	"dwmaxerr"
)

func main() {
	// The data vector of Section 2.1 / Figure 1.
	data := []float64{5, 5, 0, 26, 1, 3, 14, 2}

	w, err := dwmaxerr.Transform(data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("data:               %v\n", data)
	fmt.Printf("wavelet transform:  %v\n\n", w)

	const budget = 4
	for _, algo := range []dwmaxerr.Algorithm{dwmaxerr.Conventional, dwmaxerr.GreedyAbs, dwmaxerr.IndirectHaar} {
		res, err := dwmaxerr.Build(data, algo, dwmaxerr.Options{Budget: budget, Delta: 0.25})
		if err != nil {
			log.Fatal(err)
		}
		errs, err := dwmaxerr.Evaluate(res.Synopsis, data, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-13s retained %d/%d  max_abs=%-8.3f L2=%.3f\n",
			algo, res.Synopsis.Size(), budget, errs.MaxAbs, errs.L2)
		ev := dwmaxerr.NewEvaluator(res.Synopsis)
		recon := make([]float64, len(data))
		for i := range recon {
			recon[i] = ev.Point(i)
		}
		fmt.Printf("              reconstruction: %.1f\n", recon)
	}

	// Approximate range sums come straight off the synopsis, touching only
	// O(log N) coefficients per query (Section 2.2).
	res, _ := dwmaxerr.Build(data, dwmaxerr.GreedyAbs, dwmaxerr.Options{Budget: budget})
	ev := dwmaxerr.NewEvaluator(res.Synopsis)
	exact := 0.0
	for _, v := range data[3:7] {
		exact += v
	}
	fmt.Printf("\nrange sum d(3:6): exact=%.0f approximate=%.1f\n", exact, ev.RangeSum(3, 6))
}
