// Approximate query processing over a taxi-trip workload: the scenario
// motivating the paper's introduction. A year of NYC-style trip times is
// compressed 8x into a wavelet synopsis with a deterministic per-record
// error guarantee, then range aggregates and point lookups are answered
// from the synopsis alone, with the guarantee quantifying how far off any
// individual answer can be.
package main

import (
	"fmt"
	"log"
	"math"

	"dwmaxerr"
	"dwmaxerr/internal/dataset"
)

func main() {
	const n = 1 << 15 // trip-time records (scaled-down "NYCT" partition)
	data := dataset.NYCTLike{}.Generate(n, 2013)
	budget := n / 8

	fmt.Printf("dataset: %d NYCT-like trip-time records, synopsis budget %d (12.5%%)\n\n", n, budget)

	// Build with the distributed greedy — the algorithm the paper
	// recommends for this regime — and with the conventional selection for
	// contrast.
	maxerr, err := dwmaxerr.Build(data, dwmaxerr.DGreedyAbs, dwmaxerr.Options{Budget: budget, SubtreeLeaves: 1 << 11})
	if err != nil {
		log.Fatal(err)
	}
	conv, err := dwmaxerr.Build(data, dwmaxerr.Conventional, dwmaxerr.Options{Budget: budget})
	if err != nil {
		log.Fatal(err)
	}
	me, _ := dwmaxerr.Evaluate(maxerr.Synopsis, data, 1)
	ce, _ := dwmaxerr.Evaluate(conv.Synopsis, data, 1)
	fmt.Printf("DGreedyAbs:   max_abs=%8.1f  L2=%7.2f  (every record within ±%.1f s)\n", me.MaxAbs, me.L2, me.MaxAbs)
	fmt.Printf("Conventional: max_abs=%8.1f  L2=%7.2f  (no per-record guarantee)\n\n", ce.MaxAbs, ce.L2)

	// Answer exploratory aggregates from the synopsis.
	ev := dwmaxerr.NewEvaluator(maxerr.Synopsis)
	queries := [][2]int{{0, n/4 - 1}, {n / 2, n/2 + 999}, {n - 4096, n - 1}}
	fmt.Println("range-sum queries (seconds of trip time):")
	for _, q := range queries {
		exact := 0.0
		for _, v := range data[q[0] : q[1]+1] {
			exact += v
		}
		approx := ev.RangeSum(q[0], q[1])
		relErr := math.Abs(approx-exact) / math.Max(exact, 1) * 100
		fmt.Printf("  sum[%6d:%6d]  exact=%14.0f  approx=%14.0f  (%.3f%% off)\n",
			q[0], q[1], exact, approx, relErr)
	}

	// Point lookups honour the max-abs guarantee individually.
	fmt.Println("\npoint lookups (each within the max_abs guarantee):")
	worst := 0.0
	for _, i := range []int{7, 1024, 9999, n - 1} {
		approx := ev.Point(i)
		diff := math.Abs(approx - data[i])
		if diff > worst {
			worst = diff
		}
		fmt.Printf("  d[%6d]  exact=%7.0f  approx=%9.1f  |err|=%6.1f\n", i, data[i], approx, diff)
	}
	if worst > me.MaxAbs+1e-9 {
		log.Fatalf("guarantee violated: %g > %g", worst, me.MaxAbs)
	}
	fmt.Printf("\nall lookups within the guarantee (%.1f ≤ %.1f) ✓\n", worst, me.MaxAbs)
}
