// Spatial aggregates over a 2D pickup grid — the multidimensional
// wavelet-synopsis use case (Vitter & Wang) the paper cites. Taxi pickups
// are bucketed into a 128×128 city grid; a 2D wavelet synopsis compresses
// the grid 16x and answers "pickups inside this rectangle" queries without
// touching the original counts.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"dwmaxerr/internal/wavelet2d"
)

func main() {
	const (
		gridRows = 128
		gridCols = 128
		pickups  = 3_000_000
	)
	// Synthesize a city: two dense hotspots (downtown, airport) over a
	// sparse background.
	rng := rand.New(rand.NewSource(2013))
	grid, err := wavelet2d.NewMatrix(gridRows, gridCols)
	if err != nil {
		log.Fatal(err)
	}
	hotspot := func(cx, cy, spread float64, share float64) {
		for i := 0; i < int(float64(pickups)*share); i++ {
			x := int(cx + rng.NormFloat64()*spread)
			y := int(cy + rng.NormFloat64()*spread)
			if x >= 0 && x < gridRows && y >= 0 && y < gridCols {
				grid.Set(x, y, grid.At(x, y)+1)
			}
		}
	}
	hotspot(40, 40, 8, 0.5)          // downtown
	hotspot(100, 90, 5, 0.3)         // airport
	for i := 0; i < pickups/5; i++ { // diffuse background traffic
		x, y := rng.Intn(gridRows), rng.Intn(gridCols)
		grid.Set(x, y, grid.At(x, y)+1)
	}

	w, err := wavelet2d.Transform(grid)
	if err != nil {
		log.Fatal(err)
	}
	budget := gridRows * gridCols / 16
	syn := wavelet2d.Conventional(w, budget)
	errs, err := wavelet2d.Evaluate(syn, grid)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%dx%d grid (%d cells) → %d-term 2D synopsis (16x compression)\n",
		gridRows, gridCols, gridRows*gridCols, syn.Size())
	fmt.Printf("reconstruction: L2=%.2f, max_abs=%.0f pickups per cell\n\n", errs.L2, errs.MaxAbs)

	ev := wavelet2d.NewEvaluator(syn)
	queries := []struct {
		name           string
		x1, x2, y1, y2 int
	}{
		{"downtown core", 30, 50, 30, 50},
		{"airport zone", 90, 110, 80, 100},
		{"quiet quarter", 0, 20, 100, 127},
		{"whole city", 0, 127, 0, 127},
	}
	fmt.Println("rectangle count queries:")
	for _, q := range queries {
		var exact float64
		for x := q.x1; x <= q.x2; x++ {
			for y := q.y1; y <= q.y2; y++ {
				exact += grid.At(x, y)
			}
		}
		approx := ev.RectSum(q.x1, q.x2, q.y1, q.y2)
		off := 0.0
		if exact > 0 {
			off = math.Abs(approx-exact) / exact * 100
		}
		fmt.Printf("  %-15s rows[%3d,%3d] cols[%3d,%3d]  exact=%9.0f  approx=%9.0f  (%.2f%% off)\n",
			q.name, q.x1, q.x2, q.y1, q.y2, exact, approx, off)
	}
}
