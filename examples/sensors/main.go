// Sensor-archive compaction with a relative-error guarantee: wind-direction
// readings (the paper's WD dataset scenario) are archived as a synopsis
// whose maximum *relative* error is minimized, so small readings are not
// drowned out by large ones the way an absolute-error target would allow
// (Section 5.4). The error-bound dual (Problem 2) is also shown: ask for
// the smallest synopsis meeting a target error instead of a fixed size.
package main

import (
	"fmt"
	"log"

	"dwmaxerr"
	"dwmaxerr/internal/dataset"
)

func main() {
	const n = 1 << 14
	readings := dataset.WDLike{}.Generate(n, 7)
	for i := range readings {
		readings[i] += 20 // keep azimuths clear of zero for the demo
	}

	// Fixed-size archive: minimize max relative error with sanity bound 5.
	const budget = n / 16
	rel, err := dwmaxerr.Build(readings, dwmaxerr.GreedyRel, dwmaxerr.Options{Budget: budget, Sanity: 5})
	if err != nil {
		log.Fatal(err)
	}
	abs, err := dwmaxerr.Build(readings, dwmaxerr.GreedyAbs, dwmaxerr.Options{Budget: budget})
	if err != nil {
		log.Fatal(err)
	}
	re, _ := dwmaxerr.Evaluate(rel.Synopsis, readings, 5)
	ae, _ := dwmaxerr.Evaluate(abs.Synopsis, readings, 5)
	fmt.Printf("%d readings compressed to %d coefficients (16x)\n\n", n, budget)
	fmt.Printf("GreedyRel: max_rel=%6.2f%%  max_abs=%6.1f°\n", re.MaxRel*100, re.MaxAbs)
	fmt.Printf("GreedyAbs: max_rel=%6.2f%%  max_abs=%6.1f°\n", ae.MaxRel*100, ae.MaxAbs)
	fmt.Println("(the relative-error greedy trades a little absolute error for a uniform percentage guarantee)")

	// Dual problem: how small can the archive be if we accept at most ±8°
	// on every reading? (MinHaarSpace, unrestricted coefficients.)
	syn, feasible, err := dwmaxerr.SolveErrorBound(readings, 8, 1)
	if err != nil {
		log.Fatal(err)
	}
	if !feasible {
		log.Fatal("no grid solution at this δ")
	}
	e, _ := dwmaxerr.Evaluate(syn, readings, 5)
	fmt.Printf("\nerror-bound dual: ±8° tolerance needs only %d coefficients (%.1f%% of the data), achieved max_abs=%.2f°\n",
		syn.Size(), 100*float64(syn.Size())/float64(n), e.MaxAbs)

	// Reconstruct a window around a storm passage.
	ev := dwmaxerr.NewEvaluator(rel.Synopsis)
	fmt.Println("\nwindow reconstruction (degrees):")
	for i := 4096; i < 4104; i++ {
		fmt.Printf("  t=%d  actual=%5.0f  archived=%7.1f\n", i, readings[i], ev.Point(i))
	}
}
