// Selectivity estimation with wavelet histograms — the classic
// Matias/Vitter/Wang use case the paper's Section 1 motivates. The value
// frequencies of an attribute form a histogram vector; a max-error wavelet
// synopsis of that vector answers "how many rows have attr BETWEEN x AND
// y" with a *guaranteed* interval, which a query optimizer can use for
// safe plan choices. The conventional synopsis of the same size gives
// tighter average answers but no usable worst-case interval.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"dwmaxerr"
)

func main() {
	const domain = 1 << 12 // attribute domain [0, 4096)
	const rows = 2_000_000

	// Build the frequency histogram of a skewed attribute: a log-normal
	// body plus a few hot values.
	rng := rand.New(rand.NewSource(42))
	freq := make([]float64, domain)
	for i := 0; i < rows; i++ {
		v := int(math.Exp(rng.NormFloat64()*0.8+6.5)) % domain
		freq[v]++
	}
	for _, hot := range []int{100, 101, 2048} {
		freq[hot] += 50_000
	}

	const budget = domain / 16 // 256 coefficients ≈ 4 KB synopsis
	maxerr, err := dwmaxerr.Build(freq, dwmaxerr.GreedyAbs, dwmaxerr.Options{Budget: budget})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("histogram of %d rows over %d values → %d-term synopsis (%.1fx compression)\n",
		rows, domain, maxerr.Synopsis.Size(), float64(domain)/float64(maxerr.Synopsis.Size()))
	fmt.Printf("per-bucket guarantee: every frequency within ±%.0f rows\n\n", maxerr.MaxErr)

	ev := dwmaxerr.NewEvaluator(maxerr.Synopsis)
	queries := [][2]int{{90, 110}, {0, 511}, {2000, 2100}, {3500, 4095}}
	fmt.Println("selectivity queries (rows with value in range):")
	fmt.Printf("%-14s %12s %12s %26s %s\n", "range", "exact", "estimate", "guaranteed interval", "ok")
	for _, q := range queries {
		var exact float64
		for v := q[0]; v <= q[1]; v++ {
			exact += freq[v]
		}
		b := ev.RangeSumBound(q[0], q[1], maxerr.MaxErr)
		ok := "✓"
		if !b.Contains(exact) {
			ok = "✗ GUARANTEE VIOLATED"
		}
		fmt.Printf("[%4d,%4d]    %12.0f %12.0f    [%10.0f, %10.0f]  %s\n",
			q[0], q[1], exact, b.Approx, b.Lo(), b.Hi(), ok)
	}

	// Selectivity as a fraction of the table, with the same guarantee.
	q := queries[0]
	b := ev.RangeSumBound(q[0], q[1], maxerr.MaxErr)
	fmt.Printf("\nestimated selectivity of value BETWEEN %d AND %d: %.2f%% (guaranteed %.2f%%–%.2f%%)\n",
		q[0], q[1], 100*b.Approx/rows, 100*math.Max(0, b.Lo())/rows, 100*b.Hi()/rows)
}
