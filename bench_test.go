package dwmaxerr

// One benchmark per table/figure of the paper's evaluation, at
// laptop-scale sizes. `go test -bench=. -benchmem` regenerates every
// series; cmd/dwbench renders the full tables with larger inputs. Custom
// metrics: max_abs (achieved error), shuffle_B (bytes across the shuffle),
// makespan10/20/40_ms (simulated cluster runtime at that many map slots).

import (
	"fmt"
	"testing"

	"dwmaxerr/internal/dataset"
	"dwmaxerr/internal/dist"
	"dwmaxerr/internal/dp"
	"dwmaxerr/internal/greedy"
	"dwmaxerr/internal/synopsis"
)

const benchSeed = 20160626

func benchUniform(n int) []float64 {
	return dataset.Uniform{Max: 1000}.Generate(n, benchSeed)
}

func reportDist(b *testing.B, rep *dist.Report) {
	b.Helper()
	b.ReportMetric(rep.MaxErr, "max_abs")
	b.ReportMetric(float64(rep.TotalShuffleBytes()), "shuffle_B")
	for _, slots := range []int{10, 20, 40} {
		b.ReportMetric(float64(rep.Makespan(slots, 4).Milliseconds()), fmt.Sprintf("makespan%d_ms", slots))
	}
}

// BenchmarkTable1Transform covers Table 1: the decomposition itself.
func BenchmarkTable1Transform(b *testing.B) {
	data := benchUniform(1 << 16)
	b.SetBytes(int64(8 * len(data)))
	for i := 0; i < b.N; i++ {
		if _, err := Transform(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3Generators covers Table 3: dataset generation rates.
func BenchmarkTable3Generators(b *testing.B) {
	for _, g := range []dataset.Generator{dataset.NYCTLike{}, dataset.WDLike{}, dataset.Zipf{Max: 1000, Exponent: 1.5}} {
		b.Run(g.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g.Generate(1<<14, benchSeed)
			}
		})
	}
}

// BenchmarkFig5aSubtreeSize: runtime vs. sub-tree size, N fixed, B=N/8.
func BenchmarkFig5aSubtreeSize(b *testing.B) {
	n := 1 << 13
	src := dist.SliceSource(benchUniform(n))
	for _, s := range []int{n / 64, n / 16, n / 4} {
		b.Run(fmt.Sprintf("s=%d", s), func(b *testing.B) {
			var rep *dist.Report
			for i := 0; i < b.N; i++ {
				var err error
				rep, err = dist.DGreedyAbs(src, n/8, dist.Config{SubtreeLeaves: s})
				if err != nil {
					b.Fatal(err)
				}
			}
			reportDist(b, rep)
		})
	}
}

// BenchmarkFig5bBudget: runtime vs. budget B.
func BenchmarkFig5bBudget(b *testing.B) {
	n := 1 << 13
	src := dist.SliceSource(benchUniform(n))
	for _, div := range []int{64, 16, 8} {
		b.Run(fmt.Sprintf("B=N_%d", div), func(b *testing.B) {
			var rep *dist.Report
			for i := 0; i < b.N; i++ {
				var err error
				rep, err = dist.DGreedyAbs(src, n/div, dist.Config{SubtreeLeaves: n / 16})
				if err != nil {
					b.Fatal(err)
				}
			}
			reportDist(b, rep)
		})
	}
}

// BenchmarkFig5cScalability: DGreedyAbs vs. centralized GreedyAbs across N.
func BenchmarkFig5cScalability(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 13, 1 << 14} {
		data := benchUniform(n)
		b.Run(fmt.Sprintf("DGreedyAbs/N=%d", n), func(b *testing.B) {
			var rep *dist.Report
			for i := 0; i < b.N; i++ {
				var err error
				rep, err = dist.DGreedyAbs(dist.SliceSource(data), n/8, dist.Config{SubtreeLeaves: n / 16})
				if err != nil {
					b.Fatal(err)
				}
			}
			reportDist(b, rep)
		})
		b.Run(fmt.Sprintf("GreedyAbs/N=%d", n), func(b *testing.B) {
			var maxErr float64
			for i := 0; i < b.N; i++ {
				var err error
				_, maxErr, err = greedy.SynopsisAbs(data, n/8)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(maxErr, "max_abs")
		})
	}
}

// BenchmarkFig5dScalability: DIndirectHaar vs. centralized IndirectHaar.
func BenchmarkFig5dScalability(b *testing.B) {
	for _, n := range []int{1 << 11, 1 << 12, 1 << 13} {
		data := benchUniform(n)
		b.Run(fmt.Sprintf("DIndirectHaar/N=%d", n), func(b *testing.B) {
			var rep *dist.Report
			for i := 0; i < b.N; i++ {
				var err error
				rep, err = dist.DIndirectHaar(dist.SliceSource(data), n/8, dist.Config{SubtreeLeaves: n / 16, Delta: 50})
				if err != nil {
					b.Fatal(err)
				}
			}
			reportDist(b, rep)
		})
		b.Run(fmt.Sprintf("IndirectHaar/N=%d", n), func(b *testing.B) {
			var res dp.IndirectResult
			for i := 0; i < b.N; i++ {
				var err error
				res, err = dp.IndirectHaar(data, n/8, 50)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.MaxAbs, "max_abs")
		})
	}
}

// BenchmarkFig6DeltaDistribution: DIndirectHaar across distributions and δ.
func BenchmarkFig6DeltaDistribution(b *testing.B) {
	n := 1 << 12
	for _, gen := range []dataset.Generator{
		dataset.Uniform{Max: 1000},
		dataset.Zipf{Max: 1000, Exponent: 0.7},
		dataset.Zipf{Max: 1000, Exponent: 1.5},
	} {
		data := gen.Generate(n, benchSeed)
		for _, delta := range []float64{10, 50} {
			b.Run(fmt.Sprintf("%s/delta=%g", gen.Name(), delta), func(b *testing.B) {
				var rep *dist.Report
				for i := 0; i < b.N; i++ {
					var err error
					rep, err = dist.DIndirectHaar(dist.SliceSource(data), n/8, dist.Config{SubtreeLeaves: n / 16, Delta: delta})
					if err != nil {
						b.Fatal(err)
					}
				}
				reportDist(b, rep)
			})
		}
	}
}

// BenchmarkFig7ValueRanges: both algorithms across value ranges.
func BenchmarkFig7ValueRanges(b *testing.B) {
	n := 1 << 12
	for _, max := range []float64{1000, 100000} {
		data := dataset.Uniform{Max: max}.Generate(n, benchSeed)
		b.Run(fmt.Sprintf("DGreedyAbs/range=%g", max), func(b *testing.B) {
			var rep *dist.Report
			for i := 0; i < b.N; i++ {
				var err error
				rep, err = dist.DGreedyAbs(dist.SliceSource(data), n/8, dist.Config{SubtreeLeaves: n / 16})
				if err != nil {
					b.Fatal(err)
				}
			}
			reportDist(b, rep)
		})
		b.Run(fmt.Sprintf("DIndirectHaar/range=%g", max), func(b *testing.B) {
			var rep *dist.Report
			for i := 0; i < b.N; i++ {
				var err error
				rep, err = dist.DIndirectHaar(dist.SliceSource(data), n/8,
					dist.Config{SubtreeLeaves: n / 16, Delta: 20 * max / 1000})
				if err != nil {
					b.Fatal(err)
				}
			}
			reportDist(b, rep)
		})
	}
}

// benchComparison is the shared Fig 8/9 harness.
func benchComparison(b *testing.B, data []float64, delta float64) {
	n := len(data)
	src := dist.SliceSource(data)
	cfg := dist.Config{SubtreeLeaves: n / 16, Delta: delta}
	b.Run("GreedyAbs", func(b *testing.B) {
		var maxErr float64
		for i := 0; i < b.N; i++ {
			var err error
			_, maxErr, err = greedy.SynopsisAbs(data, n/8)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(maxErr, "max_abs")
	})
	b.Run("DGreedyAbs", func(b *testing.B) {
		var rep *dist.Report
		for i := 0; i < b.N; i++ {
			var err error
			rep, err = dist.DGreedyAbs(src, n/8, cfg)
			if err != nil {
				b.Fatal(err)
			}
		}
		reportDist(b, rep)
	})
	b.Run("IndirectHaar", func(b *testing.B) {
		var res dp.IndirectResult
		for i := 0; i < b.N; i++ {
			var err error
			res, err = dp.IndirectHaar(data, n/8, delta)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(res.MaxAbs, "max_abs")
	})
	b.Run("DIndirectHaar", func(b *testing.B) {
		var rep *dist.Report
		for i := 0; i < b.N; i++ {
			var err error
			rep, err = dist.DIndirectHaar(src, n/8, cfg)
			if err != nil {
				b.Fatal(err)
			}
		}
		reportDist(b, rep)
	})
	b.Run("CON", func(b *testing.B) {
		var rep *dist.Report
		for i := 0; i < b.N; i++ {
			var err error
			rep, err = dist.CON(src, n/8, cfg)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(synopsis.MaxAbsError(rep.Synopsis, data), "max_abs")
		b.ReportMetric(float64(rep.TotalShuffleBytes()), "shuffle_B")
	})
	b.Run("SendCoef", func(b *testing.B) {
		var rep *dist.Report
		for i := 0; i < b.N; i++ {
			var err error
			rep, err = dist.SendCoef(src, n/8, 0, cfg)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(rep.TotalShuffleBytes()), "shuffle_B")
	})
}

// BenchmarkFig8NYCT: the direct comparison on NYCT-like data (δ=50).
func BenchmarkFig8NYCT(b *testing.B) {
	benchComparison(b, dataset.NYCTLike{}.Generate(1<<12, benchSeed), 50)
}

// BenchmarkFig9WD: the direct comparison on WD-like data (δ=20).
func BenchmarkFig9WD(b *testing.B) {
	benchComparison(b, dataset.WDLike{}.Generate(1<<12, benchSeed), 20)
}

// benchConventional is the shared Fig 10/11 harness.
func benchConventional(b *testing.B, budget int) {
	n := 1 << 12
	data := dataset.NYCTLike{}.Generate(n, benchSeed)
	src := dist.SliceSource(data)
	cfg := dist.Config{SubtreeLeaves: n / 16}
	for _, tc := range []struct {
		name string
		run  func() (*dist.Report, error)
	}{
		{"CON", func() (*dist.Report, error) { return dist.CON(src, budget, cfg) }},
		{"SendV", func() (*dist.Report, error) { return dist.SendV(src, budget, cfg) }},
		{"SendCoef", func() (*dist.Report, error) { return dist.SendCoef(src, budget, 0, cfg) }},
		{"HWTopk", func() (*dist.Report, error) { return dist.HWTopk(src, budget, cfg) }},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var rep *dist.Report
			for i := 0; i < b.N; i++ {
				var err error
				rep, err = tc.run()
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rep.TotalShuffleBytes()), "shuffle_B")
		})
	}
}

// BenchmarkFig10Conventional: conventional-synopsis algorithms at B=N/8.
func BenchmarkFig10Conventional(b *testing.B) {
	benchConventional(b, (1<<12)/8)
}

// BenchmarkFig11SmallB: the same at B=50, where H-WTopk's pruning wins.
func BenchmarkFig11SmallB(b *testing.B) {
	benchConventional(b, 50)
}

// BenchmarkCommOverhead: Equation 6 — DP-row shuffle volume vs. sub-tree
// height.
func BenchmarkCommOverhead(b *testing.B) {
	n := 1 << 12
	data := benchUniform(n)
	p := dp.Params{Epsilon: 100, Delta: 10}
	for _, s := range []int{8, 64, 512} {
		b.Run(fmt.Sprintf("s=%d", s), func(b *testing.B) {
			var res *dist.DMHaarResult
			for i := 0; i < b.N; i++ {
				var err error
				res, err = dist.DMHaarSpace(dist.SliceSource(data), p, dist.Config{SubtreeLeaves: s})
				if err != nil {
					b.Fatal(err)
				}
			}
			var bytes int64
			for _, j := range res.Jobs {
				bytes += j.ShuffleBytes
			}
			b.ReportMetric(float64(bytes), "shuffle_B")
		})
	}
}
