package dwmaxerr

import (
	"dwmaxerr/internal/dp"
)

// HaarPlusSolution is a synopsis in the Haar+ dictionary (Karras &
// Mamoulis; reference [23] of the paper): per error-tree node, a head
// coefficient plus up to two supplementary coefficients that each correct
// a single sub-tree. At equal budget it is at least as accurate as any
// plain-Haar synopsis; it reconstructs data directly via Reconstruct.
type HaarPlusSolution = dp.HPSolution

// SolveErrorBoundHaarPlus answers Problem 2 over the Haar+ dictionary: the
// smallest number of Haar+ terms keeping every value within epsilon, on
// the delta grid. feasible is false when the grid admits no solution.
func SolveErrorBoundHaarPlus(data []float64, epsilon, delta float64) (*HaarPlusSolution, bool, error) {
	return dp.HaarPlus(data, dp.Params{Epsilon: epsilon, Delta: delta})
}

// BuildHaarPlus answers Problem 1 over the Haar+ dictionary: the best
// achievable maximum absolute error with at most budget terms, via binary
// search over the error bound.
func BuildHaarPlus(data []float64, budget int, delta float64) (*HaarPlusSolution, float64, error) {
	return dp.HaarPlusBudget(data, budget, delta)
}
