package dwmaxerr

import (
	"fmt"
	"math"
	"testing"
)

var paperData = []float64{5, 5, 0, 26, 1, 3, 14, 2}

func TestBuildAllAlgorithms(t *testing.T) {
	data := make([]float64, 64)
	for i := range data {
		data[i] = math.Trunc(float64((i*37)%101)) * 3
	}
	for _, algo := range Algorithms() {
		t.Run(string(algo), func(t *testing.T) {
			res, err := Build(data, algo, Options{Budget: 8, SubtreeLeaves: 8})
			if err != nil {
				t.Fatal(err)
			}
			if res.Synopsis == nil || res.Synopsis.Size() > 8 {
				t.Fatalf("synopsis = %+v", res.Synopsis)
			}
			e, err := Evaluate(res.Synopsis, data, 1)
			if err != nil {
				t.Fatal(err)
			}
			if e.MaxAbs < 0 || math.IsNaN(e.MaxAbs) {
				t.Fatalf("errors = %+v", e)
			}
		})
	}
}

func TestBuildRejectsBadInput(t *testing.T) {
	if _, err := Build(paperData, GreedyAbs, Options{}); err != ErrBudget {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	if _, err := Build(paperData, Algorithm("nope"), Options{Budget: 2, SubtreeLeaves: 2}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if _, err := Build([]float64{1, 2, 3}, GreedyAbs, Options{Budget: 2}); err == nil {
		t.Fatal("non-power-of-two accepted")
	}
	if _, err := BuildDistributed(SliceSource(paperData), GreedyAbs, Options{Budget: 2}); err == nil {
		t.Fatal("centralized algorithm accepted by BuildDistributed")
	}
	if _, err := BuildDistributed(SliceSource(paperData), DGreedyAbs, Options{}); err != ErrBudget {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}

func TestParseAlgorithm(t *testing.T) {
	for _, a := range Algorithms() {
		got, err := ParseAlgorithm(string(a))
		if err != nil || got != a {
			t.Errorf("ParseAlgorithm(%q) = %q, %v", a, got, err)
		}
	}
	if _, err := ParseAlgorithm("bogus"); err == nil {
		t.Error("bogus accepted")
	}
}

func TestTransformInverseRoundTrip(t *testing.T) {
	w, err := Transform(paperData)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Inverse(w)
	if err != nil {
		t.Fatal(err)
	}
	for i := range paperData {
		if back[i] != paperData[i] {
			t.Fatalf("round trip mismatch at %d", i)
		}
	}
}

func TestPad(t *testing.T) {
	p, orig := Pad([]float64{1, 2, 3})
	if len(p) != 4 || orig != 3 || p[3] != 3 {
		t.Fatalf("p=%v orig=%d", p, orig)
	}
}

func TestSolveErrorBound(t *testing.T) {
	s, ok, err := SolveErrorBound(paperData, 5, 0.5)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	e, _ := Evaluate(s, paperData, 1)
	if e.MaxAbs > 5 {
		t.Fatalf("bound violated: %g", e.MaxAbs)
	}
	if _, ok, _ := SolveErrorBound([]float64{0.5, 9.5, 3.3, 7.7}, 0.01, 1); ok {
		t.Fatal("expected infeasible grid")
	}
}

func TestGreedyBeatsConventionalOnMaxError(t *testing.T) {
	// The headline property: the max-error synopsis gives a much better
	// worst-case guarantee than the L2-optimal one of the same size.
	data := make([]float64, 256)
	for i := range data {
		data[i] = float64((i * 13) % 7)
	}
	data[17] = 4000 // a spike the conventional synopsis over-serves
	b := 16
	conv, err := Build(data, Conventional, Options{Budget: b})
	if err != nil {
		t.Fatal(err)
	}
	gr, err := Build(data, GreedyAbs, Options{Budget: b})
	if err != nil {
		t.Fatal(err)
	}
	ce, _ := Evaluate(conv.Synopsis, data, 1)
	ge, _ := Evaluate(gr.Synopsis, data, 1)
	if ge.MaxAbs > ce.MaxAbs {
		t.Fatalf("greedy max_abs %g worse than conventional %g", ge.MaxAbs, ce.MaxAbs)
	}
}

func ExampleBuild() {
	data := []float64{5, 5, 0, 26, 1, 3, 14, 2}
	res, err := Build(data, GreedyAbs, Options{Budget: 4})
	if err != nil {
		panic(err)
	}
	fmt.Printf("retained %d coefficients, max abs error %.1f\n", res.Synopsis.Size(), res.MaxErr)
	// The greedy tail selection found that 3 coefficients already achieve
	// the best error among the last B+1 states (Section 5.1).
	// Output: retained 3 coefficients, max abs error 6.0
}

func ExampleNewEvaluator() {
	data := []float64{5, 5, 0, 26, 1, 3, 14, 2}
	res, _ := Build(data, GreedyAbs, Options{Budget: 8})
	q := NewEvaluator(res.Synopsis)
	fmt.Printf("d(3:6) = %.0f\n", q.RangeSum(3, 6))
	// Output: d(3:6) = 44
}

func TestHaarPlusFacade(t *testing.T) {
	sol, feasible, err := SolveErrorBoundHaarPlus(paperData, 4, 0.5)
	if err != nil || !feasible {
		t.Fatalf("feasible=%v err=%v", feasible, err)
	}
	rec := sol.Reconstruct()
	for i, d := range paperData {
		if diff := rec[i] - d; diff > 4+1e-9 || diff < -4-1e-9 {
			t.Fatalf("leaf %d error %g exceeds bound", i, diff)
		}
	}
	hp, hpErr, err := BuildHaarPlus(paperData, 3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if hp.Size > 3 {
		t.Fatalf("size %d > 3", hp.Size)
	}
	// Haar+ at equal budget should not lose to the plain greedy.
	res, err := Build(paperData, GreedyAbs, Options{Budget: 3})
	if err != nil {
		t.Fatal(err)
	}
	if hpErr > res.MaxErr+0.5+1e-9 {
		t.Fatalf("Haar+ %g much worse than greedy %g", hpErr, res.MaxErr)
	}
}
