// Package dwmaxerr builds Haar wavelet synopses under maximum-error
// metrics, reproducing "Distributed Wavelet Thresholding for Maximum Error
// Metrics" (Mytilinis, Tsoumakos, Koziris — SIGMOD 2016).
//
// A wavelet synopsis approximates a data vector with at most B retained
// wavelet coefficients. Unlike the conventional L2-optimal selection, the
// algorithms here minimize the maximum absolute or maximum relative
// reconstruction error of individual values, which yields per-value error
// guarantees for approximate query processing.
//
// The package exposes:
//
//   - the Haar transform and error-tree utilities (Transform, Inverse);
//   - centralized thresholding: GreedyAbs, GreedyRel (Karras & Mamoulis)
//     and IndirectHaar/MinHaarSpace (Karras, Sacharidis & Mamoulis);
//   - the paper's distributed algorithms — DGreedyAbs, DGreedyRel,
//     DIndirectHaar — running on a built-in MapReduce-style substrate
//     (in-process or across TCP workers);
//   - the conventional-synopsis baselines CON, Send-V, Send-Coef, H-WTopk;
//   - synopsis evaluation and O(log N) point/range query answering.
//
// Quickstart:
//
//	data := []float64{5, 5, 0, 26, 1, 3, 14, 2}
//	res, err := dwmaxerr.Build(data, dwmaxerr.GreedyAbs, dwmaxerr.Options{Budget: 4})
//	// res.Synopsis holds ≤ 4 coefficients; res.MaxErr bounds every value's error.
//	q := dwmaxerr.NewEvaluator(res.Synopsis)
//	approx := q.RangeSum(2, 5)
package dwmaxerr

import (
	"errors"
	"fmt"

	"dwmaxerr/internal/dataset"
	"dwmaxerr/internal/dist"
	"dwmaxerr/internal/dp"
	"dwmaxerr/internal/greedy"
	"dwmaxerr/internal/mr"
	"dwmaxerr/internal/obs"
	"dwmaxerr/internal/synopsis"
	"dwmaxerr/internal/wavelet"
)

// Tracer records a hierarchical span tree across a build; see NewTracer.
type Tracer = obs.Tracer

// Span is one node of a trace; pass a root span as Options.Trace to
// record the job/phase/task structure of a distributed build.
type Span = obs.Span

// NewTracer creates an empty tracer. Start a root span with Start, pass
// it through Options.Trace, then export with WriteChromeTraceFile.
func NewTracer() *Tracer { return obs.NewTracer() }

// Synopsis is a compact approximate representation of a data vector: the
// retained (coefficient index, value) pairs, all others implicitly zero.
type Synopsis = synopsis.Synopsis

// Coefficient is one retained synopsis term.
type Coefficient = synopsis.Coefficient

// Errors aggregates the L2, maximum-absolute and maximum-relative
// reconstruction errors of a synopsis (Equations 1–3 of the paper).
type Errors = synopsis.Errors

// Evaluator answers point and range-sum queries against a synopsis in
// O(log N) per query.
type Evaluator = synopsis.Evaluator

// Source provides chunked read access to a (possibly file-backed) dataset
// for the distributed algorithms.
type Source = dist.Source

// SliceSource adapts an in-memory vector to Source.
type SliceSource = dist.SliceSource

// FileSource adapts a binary float64 file to Source.
type FileSource = dist.FileSource

// Engine executes the distributed algorithms' jobs. The default is an
// in-process engine; mr.NewCoordinator provides a TCP cluster.
type Engine = mr.Engine

// Algorithm selects a thresholding strategy for Build.
type Algorithm string

// The available algorithms.
const (
	// Conventional retains the B coefficients of greatest significance —
	// L2-optimal, no max-error guarantee (Section 2.3).
	Conventional Algorithm = "conventional"
	// GreedyAbs is the centralized greedy minimizing max absolute error.
	GreedyAbs Algorithm = "greedyabs"
	// GreedyRel is the centralized greedy minimizing max relative error.
	GreedyRel Algorithm = "greedyrel"
	// IndirectHaar is the centralized DP (binary search + MinHaarSpace).
	IndirectHaar Algorithm = "indirecthaar"
	// DGreedyAbs is the distributed greedy for max absolute error.
	DGreedyAbs Algorithm = "dgreedyabs"
	// DGreedyRel is the distributed greedy for max relative error.
	DGreedyRel Algorithm = "dgreedyrel"
	// DIndirectHaar is the distributed DP.
	DIndirectHaar Algorithm = "dindirecthaar"
	// CON builds the conventional synopsis in parallel (Appendix A.1).
	CON Algorithm = "con"
	// SendV builds the conventional synopsis with raw-value shipping.
	SendV Algorithm = "sendv"
	// SendCoef builds the conventional synopsis with partial-coefficient
	// shipping (Appendix A.3).
	SendCoef Algorithm = "sendcoef"
	// HWTopk builds the conventional synopsis with the three-round
	// distributed top-k protocol (Appendix A.4).
	HWTopk Algorithm = "hwtopk"
)

// Algorithms lists every supported algorithm name.
func Algorithms() []Algorithm {
	return []Algorithm{Conventional, GreedyAbs, GreedyRel, IndirectHaar,
		DGreedyAbs, DGreedyRel, DIndirectHaar, CON, SendV, SendCoef, HWTopk}
}

// ParseAlgorithm resolves a CLI-friendly name.
func ParseAlgorithm(name string) (Algorithm, error) {
	for _, a := range Algorithms() {
		if string(a) == name {
			return a, nil
		}
	}
	return "", fmt.Errorf("dwmaxerr: unknown algorithm %q (available: %v)", name, Algorithms())
}

// Options configures Build.
type Options struct {
	// Budget is the maximum number of retained coefficients B (required).
	Budget int
	// Sanity is the relative-error sanity bound S; 0 means 1.
	Sanity float64
	// Delta is the DP quantization step δ for the IndirectHaar family;
	// 0 means 1.
	Delta float64
	// SubtreeLeaves is the per-worker sub-tree size for the distributed
	// algorithms (a power of two); 0 picks a default.
	SubtreeLeaves int
	// Engine executes distributed jobs; nil means in-process.
	Engine Engine
	// Reducers overrides the number of reduce tasks; 0 means the default.
	Reducers int
	// Trace, when non-nil, receives one child span per distributed
	// algorithm run (with layer, probe and job sub-spans below it).
	Trace *Span
	// Checkpoint, when non-nil, records completed sub-results of the
	// distributed pipelines so a killed build resumes instead of
	// re-running. Scope one store to one dataset — keys encode the
	// problem shape, not the data. See NewFileCheckpoint.
	Checkpoint CheckpointStore
}

// CheckpointStore persists completed pipeline sub-results (DIndirectHaar
// probe verdicts and layer rows, the DGreedyAbs histogram) keyed by
// problem shape; pass one as Options.Checkpoint to make a build
// resumable across driver restarts.
type CheckpointStore = dist.CheckpointStore

// NewFileCheckpoint creates dir (if needed) and returns a file-backed
// CheckpointStore over it, one file per record, surviving process death.
func NewFileCheckpoint(dir string) (CheckpointStore, error) {
	return dist.NewFileCheckpoint(dir)
}

func (o Options) distConfig() dist.Config {
	return dist.Config{
		Engine:        o.Engine,
		SubtreeLeaves: o.SubtreeLeaves,
		Reducers:      o.Reducers,
		Delta:         o.Delta,
		Sanity:        o.Sanity,
		Trace:         o.Trace,
		Checkpoint:    o.Checkpoint,
	}
}

func (o Options) delta() float64 {
	if o.Delta > 0 {
		return o.Delta
	}
	return 1
}

func (o Options) sanity() float64 {
	if o.Sanity > 0 {
		return o.Sanity
	}
	return 1
}

// Result is the outcome of Build.
type Result struct {
	Synopsis *Synopsis
	// MaxErr is the achieved maximum error in the algorithm's metric
	// (absolute for *Abs/IndirectHaar, relative for *Rel). It is 0 for the
	// conventional algorithms, which offer no max-error guarantee; use
	// Evaluate to measure them.
	MaxErr float64
	// Jobs reports the MapReduce metrics of the distributed algorithms
	// (empty for centralized ones).
	Jobs []mr.Metrics
}

// ErrBudget is returned for non-positive budgets.
var ErrBudget = errors.New("dwmaxerr: Options.Budget must be >= 1")

// Build constructs a wavelet synopsis of data (length a power of two; see
// Pad) with the chosen algorithm.
func Build(data []float64, algo Algorithm, opt Options) (*Result, error) {
	if opt.Budget < 1 {
		return nil, ErrBudget
	}
	switch algo {
	case Conventional:
		w, err := wavelet.Transform(data)
		if err != nil {
			return nil, err
		}
		return &Result{Synopsis: synopsis.Conventional(w, opt.Budget)}, nil
	case GreedyAbs:
		s, e, err := greedy.SynopsisAbs(data, opt.Budget)
		if err != nil {
			return nil, err
		}
		return &Result{Synopsis: s, MaxErr: e}, nil
	case GreedyRel:
		s, e, err := greedy.SynopsisRel(data, opt.Budget, opt.sanity())
		if err != nil {
			return nil, err
		}
		return &Result{Synopsis: s, MaxErr: e}, nil
	case IndirectHaar:
		res, err := dp.IndirectHaar(data, opt.Budget, opt.delta())
		if err != nil {
			return nil, err
		}
		return &Result{Synopsis: res.Synopsis, MaxErr: res.MaxAbs}, nil
	default:
		return BuildDistributed(SliceSource(data), algo, opt)
	}
}

// BuildDistributed constructs a synopsis over a Source with one of the
// distributed algorithms (DGreedyAbs, DGreedyRel, DIndirectHaar, CON,
// SendV, SendCoef, HWTopk).
func BuildDistributed(src Source, algo Algorithm, opt Options) (*Result, error) {
	if opt.Budget < 1 {
		return nil, ErrBudget
	}
	cfg := opt.distConfig()
	var rep *dist.Report
	var err error
	switch algo {
	case DGreedyAbs:
		rep, err = dist.DGreedyAbs(src, opt.Budget, cfg)
	case DGreedyRel:
		rep, err = dist.DGreedyRel(src, opt.Budget, cfg)
	case DIndirectHaar:
		rep, err = dist.DIndirectHaar(src, opt.Budget, cfg)
	case CON:
		rep, err = dist.CON(src, opt.Budget, cfg)
	case SendV:
		rep, err = dist.SendV(src, opt.Budget, cfg)
	case SendCoef:
		rep, err = dist.SendCoef(src, opt.Budget, 0, cfg)
	case HWTopk:
		rep, err = dist.HWTopk(src, opt.Budget, cfg)
	default:
		return nil, fmt.Errorf("dwmaxerr: algorithm %q is not distributed (use Build)", algo)
	}
	if err != nil {
		return nil, err
	}
	return &Result{Synopsis: rep.Synopsis, MaxErr: rep.MaxErr, Jobs: rep.Jobs}, nil
}

// Transform computes the Haar wavelet decomposition of data (length a
// power of two) in error-tree layout.
func Transform(data []float64) ([]float64, error) {
	return wavelet.Transform(data)
}

// Inverse reconstructs the data vector from a full coefficient vector.
func Inverse(w []float64) ([]float64, error) {
	return wavelet.Inverse(w)
}

// Pad extends data to the next power-of-two length by repeating the final
// value and returns the padded vector with the original length.
func Pad(data []float64) (padded []float64, originalLen int) {
	return dataset.PadToPowerOfTwo(data)
}

// Evaluate measures a synopsis against the original data with sanity bound
// sanity (0 means 1) for the relative metric.
func Evaluate(s *Synopsis, data []float64, sanity float64) (Errors, error) {
	return synopsis.Evaluate(s, data, sanity)
}

// NewEvaluator builds a query evaluator over a synopsis.
func NewEvaluator(s *Synopsis) *Evaluator {
	return synopsis.NewEvaluator(s)
}

// SolveErrorBound answers the dual Problem 2 centrally: the smallest
// synopsis (on the δ grid) whose maximum absolute error is at most epsilon.
// feasible is false when the grid admits no solution.
func SolveErrorBound(data []float64, epsilon, delta float64) (s *Synopsis, feasible bool, err error) {
	sol, ok, err := dp.MinHaarSpace(data, dp.Params{Epsilon: epsilon, Delta: delta})
	if err != nil || !ok {
		return nil, false, err
	}
	return sol.Synopsis, true, nil
}
