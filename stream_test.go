package dwmaxerr

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestStreamConventionalMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n, b := 256, 32
	data := make([]float64, n)
	for i := range data {
		data[i] = math.Trunc(rng.NormFloat64() * 100)
	}
	i := 0
	streamed, err := StreamConventional(n, b, func() (float64, bool) {
		if i >= n {
			return 0, false
		}
		v := data[i]
		i++
		return v, true
	})
	if err != nil {
		t.Fatal(err)
	}
	batch, err := Build(data, Conventional, Options{Budget: b})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(streamed.Terms, batch.Synopsis.Terms) {
		t.Fatalf("streamed %v != batch %v", streamed.Terms, batch.Synopsis.Terms)
	}
}

// TestStreamConventionalTieHeavy property-checks that the one-pass
// synopsis is term-for-term identical to the batch synopsis.Conventional
// on inputs engineered for significance ties: values from a tiny
// power-of-two set make |c|^2/2^level collide constantly, so the
// deterministic tie-break (smaller index wins) is exercised on nearly
// every retention decision.
func TestStreamConventionalTieHeavy(t *testing.T) {
	f := func(seed int64, logn, bRaw uint8) bool {
		n := 1 << (2 + logn%7) // 4..256
		b := 1 + int(bRaw)%n
		rng := rand.New(rand.NewSource(seed))
		vals := []float64{-16, -8, 0, 0, 8, 16}
		data := make([]float64, n)
		for i := range data {
			data[i] = vals[rng.Intn(len(vals))]
		}
		i := 0
		streamed, err := StreamConventional(n, b, func() (float64, bool) {
			if i >= n {
				return 0, false
			}
			v := data[i]
			i++
			return v, true
		})
		if err != nil {
			return false
		}
		batch, err := Build(data, Conventional, Options{Budget: b})
		if err != nil {
			return false
		}
		return reflect.DeepEqual(streamed.Terms, batch.Synopsis.Terms)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestStreamConventionalFailedFinish pins that a stream ending early can
// never be mistaken for success: the TopKStream heap is populated with
// the prefix's coefficients at that point, and StreamConventional must
// surface the Finish error with a nil synopsis rather than packaging the
// partial heap.
func TestStreamConventionalFailedFinish(t *testing.T) {
	for _, short := range []int{1, 5, 7} {
		i := 0
		s, err := StreamConventional(8, 4, func() (float64, bool) {
			if i >= short {
				return 0, false
			}
			i++
			return float64(i), true
		})
		if err == nil {
			t.Fatalf("stream of %d/8 values accepted", short)
		}
		if s != nil {
			t.Fatalf("stream of %d/8 values returned a synopsis alongside the error: %+v", short, s)
		}
	}
}

func TestStreamConventionalShortStream(t *testing.T) {
	if _, err := StreamConventional(8, 2, func() (float64, bool) { return 0, false }); err == nil {
		t.Fatal("short stream accepted")
	}
	if _, err := StreamConventional(8, 0, nil); err == nil {
		t.Fatal("budget 0 accepted")
	}
}

func TestNewStreamerFacade(t *testing.T) {
	var coefs []float64
	s, err := NewStreamer(4, func(idx int, v float64) { coefs = append(coefs, v) })
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{1, 3, 5, 7} {
		if err := s.Push(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Finish(); err != nil {
		t.Fatal(err)
	}
	if len(coefs) != 4 {
		t.Fatalf("emitted %d coefficients", len(coefs))
	}
}

func TestSynopsisSerializationFacade(t *testing.T) {
	res, err := Build(paperData, GreedyAbs, Options{Budget: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSynopsis(&buf, res.Synopsis); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSynopsis(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Terms, res.Synopsis.Terms) || back.N != res.Synopsis.N {
		t.Fatalf("round trip mismatch: %+v vs %+v", back, res.Synopsis)
	}
}

func TestBoundedQueriesFacade(t *testing.T) {
	res, err := Build(paperData, GreedyAbs, Options{Budget: 4})
	if err != nil {
		t.Fatal(err)
	}
	ev := NewEvaluator(res.Synopsis)
	for k, d := range paperData {
		if b := ev.PointBound(k, res.MaxErr); !b.Contains(d) {
			t.Fatalf("point %d: %v misses %g", k, b, d)
		}
	}
	exact := 0.0
	for _, d := range paperData[1:6] {
		exact += d
	}
	if b := ev.RangeSumBound(1, 5, res.MaxErr); !b.Contains(exact) {
		t.Fatalf("range: %v misses %g", b, exact)
	}
}
