module dwmaxerr/tools/dwlint

go 1.24

replace dwmaxerr => ../..
