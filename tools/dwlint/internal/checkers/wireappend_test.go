package checkers

import (
	"testing"

	"dwmaxerr/tools/dwlint/internal/anz/anztest"
)

func TestWireappend(t *testing.T) { anztest.Run(t, Wireappend, "wireappend") }
