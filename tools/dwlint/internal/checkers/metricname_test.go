package checkers

import (
	"testing"

	"dwmaxerr/tools/dwlint/internal/anz/anztest"
)

func TestMetricname(t *testing.T) { anztest.Run(t, Metricname, "metricname") }
