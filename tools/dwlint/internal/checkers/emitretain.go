package checkers

import (
	"go/ast"
	"go/types"

	"dwmaxerr/tools/dwlint/internal/anz"
)

// Emitretain enforces the arena pooling contract from mr/arena.go on
// both sides of the Emit boundary:
//
//   - An Emit implementation (any func(key, value []byte) error) must
//     copy its arguments before storing them anywhere that outlives the
//     call: callers reuse one scratch buffer across emits, so a stored
//     raw slice is clobbered by the very next record.
//   - A reduce/combine callback (TaskContext + Emit + [][]byte params)
//     must not let the group slices escape the task: the values header
//     is reused for the next group and the byte slices live in pooled
//     arena blocks that recycle when the task's output is serialized.
//     One escaped slice resurfaces later holding another task's bytes.
//
// Flagged escapes: storing a bare (uncopied) tracked slice into a struct
// field, a composite literal, a container captured from an outer scope,
// a variable from an outer scope, through a pointer, or sending it on a
// channel. Local aliases (x := values[i]; for _, v := range values) are
// tracked one level deep in source order. Passing a tracked slice to a
// function call is allowed — emit copies, and deeper interprocedural
// escapes are out of scope for a lexical checker.
var Emitretain = &anz.Analyzer{
	Name: "emitretain",
	Doc:  "don't retain/alias key/value slices passed to Emit or reduce group values past the callback",
	Run:  runEmitretain,
}

func runEmitretain(pass *anz.Pass) error {
	for _, file := range pass.Files {
		anz.InspectStack(file, func(n ast.Node, stack []ast.Node) bool {
			ft, body, ok := funcParts(n)
			if !ok || body == nil {
				return true
			}
			tracked := candidateParams(pass, ft)
			if len(tracked) == 0 {
				return true
			}
			checkRetention(pass, n, body, tracked)
			return true
		})
	}
	return nil
}

// candidateParams returns the arena-backed parameters of a task or emit
// function, or nil if the function is neither.
func candidateParams(pass *anz.Pass, ft *ast.FuncType) map[*types.Var]bool {
	if ft.Params == nil {
		return nil
	}
	var (
		params    []*types.Var
		hasCtx    bool
		hasEmit   bool
		byteSlice []*types.Var // []byte params
		grouped   []*types.Var // [][]byte params
	)
	for _, f := range ft.Params.List {
		tv, ok := pass.Info.Types[f.Type]
		if !ok {
			continue
		}
		for _, name := range f.Names {
			v, ok := pass.Info.Defs[name].(*types.Var)
			if !ok {
				continue
			}
			params = append(params, v)
			switch {
			case isNamed(tv.Type, mrPath, "TaskContext"):
				hasCtx = true
			case isNamed(tv.Type, mrPath, "Emit"):
				hasEmit = true
			case isByteSlice(tv.Type):
				byteSlice = append(byteSlice, v)
			case isByteSliceSlice(tv.Type):
				grouped = append(grouped, v)
			}
		}
	}
	tracked := map[*types.Var]bool{}
	switch {
	case hasCtx && hasEmit:
		// Reduce/combine callback: key and values are arena-backed.
		for _, v := range byteSlice {
			tracked[v] = true
		}
		for _, v := range grouped {
			tracked[v] = true
		}
	case len(params) == 2 && len(byteSlice) == 2 && resultsError(pass, ft):
		// Emit implementation: func(key, value []byte) error.
		for _, v := range byteSlice {
			tracked[v] = true
		}
	}
	if len(tracked) == 0 {
		return nil
	}
	return tracked
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

func isByteSliceSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	return ok && isByteSlice(s.Elem())
}

func resultsError(pass *anz.Pass, ft *ast.FuncType) bool {
	if ft.Results == nil || len(ft.Results.List) != 1 {
		return false
	}
	tv, ok := pass.Info.Types[ft.Results.List[0].Type]
	return ok && tv.Type != nil && tv.Type.String() == "error"
}

// checkRetention walks one candidate function body flagging escapes of
// tracked slices.
func checkRetention(pass *anz.Pass, fnNode ast.Node, body *ast.BlockStmt, tracked map[*types.Var]bool) {
	// Pass 1, in source order: extend tracking through local aliases
	// (x := values; v := values[i]; for _, v := range values).
	ast.Inspect(body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range node.Rhs {
				if i >= len(node.Lhs) || trackedAlias(pass, rhs, tracked) == nil {
					continue
				}
				if id, ok := node.Lhs[i].(*ast.Ident); ok {
					if v, ok := pass.Info.Defs[id].(*types.Var); ok {
						tracked[v] = true
					}
				}
			}
		case *ast.RangeStmt:
			if trackedAlias(pass, node.X, tracked) != nil && node.Value != nil {
				if id, ok := node.Value.(*ast.Ident); ok {
					if v, ok := pass.Info.Defs[id].(*types.Var); ok {
						tracked[v] = true
					}
				}
			}
		}
		return true
	})

	// Pass 2: flag escapes.
	anz.InspectStack(body, func(n ast.Node, stack []ast.Node) bool {
		switch node := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range node.Rhs {
				if i >= len(node.Lhs) {
					break
				}
				v := trackedAlias(pass, rhs, tracked)
				if v == nil {
					continue
				}
				switch lhs := node.Lhs[i].(type) {
				case *ast.Ident:
					if obj, ok := objOf(pass, lhs).(*types.Var); ok && obj != nil && !declaredWithin(pass, obj, fnNode) {
						pass.Reportf(rhs.Pos(), "arena-backed slice %s assigned to %s captured from outside the task function: it is recycled when the task ends (copy it first)", v.Name(), lhs.Name)
					}
				case *ast.SelectorExpr:
					pass.Reportf(rhs.Pos(), "arena-backed slice %s stored in a field without copying: the engine reuses its backing memory (arena contract, mr/arena.go)", v.Name())
				case *ast.IndexExpr:
					if base := baseIdent(lhs.X); base != nil {
						if obj, ok := objOf(pass, base).(*types.Var); ok && !declaredWithin(pass, obj, fnNode) {
							pass.Reportf(rhs.Pos(), "arena-backed slice %s stored into container %s captured from outside the task function (copy it first)", v.Name(), base.Name)
						}
					}
				case *ast.StarExpr:
					pass.Reportf(rhs.Pos(), "arena-backed slice %s stored through a pointer without copying (arena contract, mr/arena.go)", v.Name())
				}
			}
		case *ast.SendStmt:
			if v := trackedAlias(pass, node.Value, tracked); v != nil {
				pass.Reportf(node.Value.Pos(), "arena-backed slice %s sent on a channel: the receiver outlives the task's arena (copy it first)", v.Name())
			}
		case *ast.CompositeLit:
			for _, elt := range node.Elts {
				expr := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					expr = kv.Value
				}
				if v := trackedAlias(pass, expr, tracked); v != nil {
					pass.Reportf(expr.Pos(), "arena-backed slice %s aliased into a composite literal without copying (arena contract, mr/arena.go)", v.Name())
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(node.Fun).(*ast.Ident); ok && id.Name == "append" {
				if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin && len(node.Args) > 1 {
					checkAppend(pass, node, fnNode, tracked)
				}
			}
		}
		return true
	})
}

// checkAppend flags append(dst, tracked...) when dst outlives the task:
// a field, or a slice captured from an outer scope.
func checkAppend(pass *anz.Pass, call *ast.CallExpr, fnNode ast.Node, tracked map[*types.Var]bool) {
	var v *types.Var
	for _, arg := range call.Args[1:] {
		if v = trackedAlias(pass, arg, tracked); v != nil {
			break
		}
	}
	if v == nil {
		return
	}
	switch dst := ast.Unparen(call.Args[0]).(type) {
	case *ast.SelectorExpr:
		pass.Reportf(call.Pos(), "arena-backed slice %s appended into a field without copying (arena contract, mr/arena.go)", v.Name())
	case *ast.Ident:
		if obj, ok := objOf(pass, dst).(*types.Var); ok && !declaredWithin(pass, obj, fnNode) {
			pass.Reportf(call.Pos(), "arena-backed slice %s appended into %s captured from outside the task function (copy it first)", v.Name(), dst.Name)
		}
	}
}

// trackedAlias unwraps expr to a bare alias of a tracked slice: the
// identifier itself, an index/slice of it, or a slice-to-slice
// conversion of one. Anything routed through a real function call is a
// copy by convention and passes.
func trackedAlias(pass *anz.Pass, expr ast.Expr, tracked map[*types.Var]bool) *types.Var {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		if v, ok := objOf(pass, e).(*types.Var); ok && tracked[v] {
			return v
		}
	case *ast.IndexExpr:
		return trackedAlias(pass, e.X, tracked)
	case *ast.SliceExpr:
		return trackedAlias(pass, e.X, tracked)
	case *ast.CallExpr:
		// A conversion to another slice type ([]byte(x)) aliases the same
		// backing array; a conversion to string or a function call copies.
		if tv, ok := pass.Info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			if _, isSlice := tv.Type.Underlying().(*types.Slice); isSlice {
				return trackedAlias(pass, e.Args[0], tracked)
			}
		}
	}
	return nil
}

func objOf(pass *anz.Pass, id *ast.Ident) types.Object {
	if o := pass.Info.Uses[id]; o != nil {
		return o
	}
	return pass.Info.Defs[id]
}

// baseIdent digs to the leftmost identifier of a selector/index chain.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// declaredWithin reports whether v's declaration lies inside fnNode —
// i.e. it is local to the candidate function (parameters included).
func declaredWithin(pass *anz.Pass, v *types.Var, fnNode ast.Node) bool {
	return v.Pos() >= fnNode.Pos() && v.Pos() <= fnNode.End()
}
