package checkers

import (
	"go/ast"
	"go/constant"
	"path/filepath"
	"regexp"
	"strings"

	"dwmaxerr/tools/dwlint/internal/anz"
)

// metricNameRe is the repo's metric naming convention (DESIGN.md §9):
// subsystem prefix, snake_case, nothing dynamic.
var metricNameRe = regexp.MustCompile(`^(mr|dist|serve)_[a-z0-9_]+$`)

// metricPrefixByPkg pins each instrumented package to its own prefix so
// e.g. dist code cannot squat on the mr_ namespace.
var metricPrefixByPkg = map[string]string{
	mrPath:                    "mr_",
	"dwmaxerr/internal/dist":  "dist_",
	"dwmaxerr/internal/serve": "serve_",
}

// Metricname enforces the obs metric-naming contract: every
// Registry.Counter/Gauge/Histogram call names its metric with a
// compile-time constant string matching ^(mr|dist|serve)_[a-z0-9_]+$,
// from the owning package's metrics.go. A fmt.Sprintf-built name would
// mint a new time series per distinct value — unbounded cardinality on
// /debug/vars — and names outside metrics.go rot into collisions because
// nobody can see the package's namespace in one place.
var Metricname = &anz.Analyzer{
	Name: "metricname",
	Doc:  "obs metric names must be constant, match ^(mr|dist|serve)_[a-z0-9_]+$, and live in the package's metrics.go",
	Run:  runMetricname,
}

func runMetricname(pass *anz.Pass) error {
	// The obs package itself defines the Registry; it registers nothing.
	if pass.Pkg.Path() == obsPath {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			kind := ""
			for _, k := range []string{"Counter", "Gauge", "Histogram"} {
				if methodOn(pass, call, obsPath, "Registry", k) {
					kind = k
					break
				}
			}
			if kind == "" || len(call.Args) != 1 {
				return true
			}
			arg := call.Args[0]
			tv := pass.Info.Types[arg]
			if tv.Value == nil || tv.Value.Kind() != constant.String {
				pass.Reportf(arg.Pos(), "obs.%s name must be a compile-time constant string (a dynamic name mints one time series per value — unbounded cardinality)", kind)
				return true
			}
			name := constant.StringVal(tv.Value)
			if !metricNameRe.MatchString(name) {
				pass.Reportf(arg.Pos(), "obs metric name %q does not match %s", name, metricNameRe)
			} else if prefix, ok := metricPrefixByPkg[pass.Pkg.Path()]; ok && !strings.HasPrefix(name, prefix) {
				pass.Reportf(arg.Pos(), "obs metric %q registered from %s must use the package's %q prefix", name, pass.Pkg.Path(), prefix)
			}
			if base := filepath.Base(pass.Fset.Position(call.Pos()).Filename); base != "metrics.go" {
				pass.Reportf(call.Pos(), "obs metric %q must be declared in this package's metrics.go (found in %s) so the namespace is auditable in one place", name, base)
			}
			return true
		})
	}
	return nil
}
