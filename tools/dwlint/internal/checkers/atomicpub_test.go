package checkers

import (
	"testing"

	"dwmaxerr/tools/dwlint/internal/anz/anztest"
)

func TestAtomicpub(t *testing.T)      { anztest.Run(t, Atomicpub, "atomicpub") }
func TestAtomicpubClean(t *testing.T) { anztest.Run(t, Atomicpub, "atomicpubclean") }
