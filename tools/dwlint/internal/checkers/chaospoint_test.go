package checkers

import (
	"testing"

	"dwmaxerr/tools/dwlint/internal/anz/anztest"
)

func TestChaospoint(t *testing.T) { anztest.Run(t, Chaospoint, "chaospoint") }
