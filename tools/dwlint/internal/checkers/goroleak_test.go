package checkers

import (
	"testing"

	"dwmaxerr/tools/dwlint/internal/anz/anztest"
)

func TestGoroleak(t *testing.T)      { anztest.Run(t, Goroleak, "goroleak") }
func TestGoroleakClean(t *testing.T) { anztest.Run(t, Goroleak, "goroleakclean") }
