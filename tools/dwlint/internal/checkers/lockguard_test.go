package checkers

import (
	"testing"

	"dwmaxerr/tools/dwlint/internal/anz/anztest"
)

func TestLockguard(t *testing.T) { anztest.Run(t, Lockguard, "lockguard") }
