// Package chaospoint is a dwlint fixture: chaos.Point call sites and
// chaosPoint carrier assignments exercise the failpoint registration
// rules; violations live in chaospoint.go.
package chaospoint

// Failpoint names of this fixture package.
const (
	ptGood = "fixture.good.point"
	ptBad  = "Fixture_BAD" // name violates the dotted-lowercase convention
)
