package chaospoint

import "dwmaxerr/internal/chaos"

// Fault specs handed to chaos.New must target declared points: a typo
// here silently tests nothing.
func useSpecs(dynamic string) {
	_, _ = chaos.New(1, "fixture.good.point:err@0.5")
	_, _ = chaos.New(2, "fixture.unknown.point:err")                 // want "undeclared point"
	_, _ = chaos.New(3, ptGood+":hang;fixture.missing.point:drop#1") // want "undeclared point"
	_, _ = chaos.New(4, dynamic)                                     // unresolvable specs are skipped
	_, _ = chaos.New(5, "fixture.good.point:drop#1;fixture.good.point:delay=5ms")
}
