package chaospoint

import "dwmaxerr/internal/chaos"

// misplaced is well-formed but declared outside chaos.go.
const misplaced = "fixture.misplaced.point"

type writer struct {
	chaosPoint string
	label      string
}

func calls(name string) {
	_ = chaos.Point(ptGood)
	_ = chaos.Point(ptBad)                   // want "does not match"
	_ = chaos.Point("fixture.literal.point") // want "must be a constant declared in this package's chaos.go"
	_ = chaos.Point(misplaced)               // want "must be a constant declared in this package's chaos.go"
	_ = chaos.Point(name)                    // want "carrier"

	w := writer{chaosPoint: ptGood}
	_ = chaos.Point(w.chaosPoint)
	w.chaosPoint = ptGood
	w.chaosPoint = ""                     // clearing a carrier disables injection
	w.chaosPoint = "fixture.sneaky.point" // want "assigned to a chaosPoint carrier"
	w.chaosPoint = name                   // want "assigned to a chaosPoint carrier"
	w.label = "anything"                  // non-carrier fields are out of scope
	_ = chaos.Point(w.label)              // want "carrier"
}

// inline composite literals are held to the same rule as assignments.
var bad = writer{chaosPoint: "fixture.inline.point"} // want "assigned to a chaosPoint carrier"

// chaosPoint locals are carriers too: relaying between them is fine.
func relay(w writer) {
	chaosPoint := w.chaosPoint
	_ = chaos.Point(chaosPoint)
}
