// Package wireappend is a dwlint fixture: per-record reflection codecs
// inside task hot loops are flagged; the Append* idiom, cold paths, and
// driver-side loops are not. One violation carries a justified
// suppression directive to prove //dwlint:ignore works.
package wireappend

import (
	"bytes"
	"encoding/gob"

	"dwmaxerr/internal/mr"
)

type rec struct{ K, V uint64 }

func badMap(ctx mr.TaskContext, split mr.Split, emit mr.Emit) error {
	// Cold path: per-task gob before the loop is fine.
	params := mr.MustGobEncode(rec{})
	_ = params
	for i := uint64(0); i < 4; i++ {
		payload := mr.MustGobEncode(rec{K: i, V: i}) // want "per-record MustGobEncode in a task hot loop"
		k := mr.EncodeUint64(i)                      // want "allocates per record"
		_ = mr.EncodeUvarint(i)                      // want "allocates per record"
		_ = mr.EncodeOrderedUvarint(i)               // want "allocates per record"
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(rec{K: i}); err != nil { // want "per-record NewEncoder in a task hot loop"
			return err
		}
		if err := emit(k, payload); err != nil {
			return err
		}
	}
	return nil
}

func suppressed(ctx mr.TaskContext, split mr.Split, emit mr.Emit) error {
	for i := uint64(0); i < 4; i++ {
		//dwlint:ignore wireappend -- fixture: demonstrates a justified suppression
		payload := mr.MustGobEncode(rec{K: i})
		if err := emit(nil, payload); err != nil {
			return err
		}
	}
	return nil
}

func goodMap(ctx mr.TaskContext, split mr.Split, emit mr.Emit) error {
	var kbuf, vbuf []byte
	for i := uint64(0); i < 4; i++ {
		kbuf = mr.AppendOrderedUvarint(kbuf[:0], i)
		vbuf = mr.AppendUvarint(vbuf[:0], i)
		if err := emit(kbuf, vbuf); err != nil {
			return err
		}
	}
	return nil
}

// driverLoop has no Emit parameter: gob in its loop is driver-side and
// out of scope.
func driverLoop(blobs [][]byte) ([]rec, error) {
	out := make([]rec, 0, len(blobs))
	for _, b := range blobs {
		var r rec
		if err := mr.GobDecode(b, &r); err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
