package lockorder

import "sync"

type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

// ab and ba acquire the two locks in opposite orders: a classic
// potential deadlock.
func ab(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want "lock-order cycle"
	b.mu.Unlock()
}

func ba(a *A, b *B) {
	b.mu.Lock()
	defer b.mu.Unlock()
	a.mu.Lock() // want "lock-order cycle"
	a.mu.Unlock()
}

// double re-locks the same mutex expression: a self-deadlock.
func double(a *A) {
	a.mu.Lock()
	a.mu.Lock() // want "lock-order cycle"
	a.mu.Unlock()
	a.mu.Unlock()
}

type C struct{ mu sync.Mutex }

type D struct{ mu sync.Mutex }

func lockD(d *D) {
	d.mu.Lock()
	d.mu.Unlock()
}

// cThenD acquires D.mu indirectly, through lockD's summary; dThenC
// closes the cycle directly.
func cThenD(c *C, d *D) {
	c.mu.Lock()
	lockD(d) // want "lock-order cycle"
	c.mu.Unlock()
}

func dThenC(c *C, d *D) {
	d.mu.Lock()
	defer d.mu.Unlock()
	c.mu.Lock() // want "lock-order cycle"
	c.mu.Unlock()
}
