package metricname

import "dwmaxerr/internal/obs"

// misplaced is well-formed but registered outside metrics.go.
var misplaced = obs.Default.Counter("mr_fixture_misplaced") // want "must be declared in this package's metrics.go"
