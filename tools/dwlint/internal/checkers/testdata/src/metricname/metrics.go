// Package metricname is a dwlint fixture: metric registrations in
// metrics.go exercise the constancy and naming rules; other.go seeds a
// placement violation.
package metricname

import "dwmaxerr/internal/obs"

var (
	goodCounter = obs.Default.Counter("mr_fixture_events")
	goodGauge   = obs.Default.Gauge("dist_fixture_depth")
	goodHist    = obs.Default.Histogram("serve_fixture_latency_us")

	badCase   = obs.Default.Counter("mr_Fixture_Events") // want "does not match"
	badPrefix = obs.Default.Gauge("queue_depth")         // want "does not match"
)

func dynamic(name string) {
	_ = obs.Default.Counter("mr_" + name) // want "compile-time constant"
}
