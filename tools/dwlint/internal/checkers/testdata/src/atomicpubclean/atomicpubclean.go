package atomicpubclean

import "sync/atomic"

type snap struct{ n int }

var cur atomic.Pointer[snap]

func build() *snap { return &snap{} }

// Mutate first, publish last: the canonical copy-on-write pattern.
func good() {
	s := &snap{}
	s.n = 1
	cur.Store(s)
}

// Publishing an inline expression binds no name to write through.
func goodInline() {
	cur.Store(build())
}

// Rebinding after the publish starts a fresh, unpublished value.
func goodRebind() {
	s := &snap{}
	cur.Store(s)
	s = build()
	s.n = 2
	cur.Store(s)
}

// A branch that never follows the publish is fine.
func goodBranch(c bool) {
	s := &snap{}
	if c {
		s.n = 3
		return
	}
	cur.Store(s)
}

// Reads after publish are always fine.
func goodRead() int {
	s := &snap{}
	cur.Store(s)
	return s.n
}
