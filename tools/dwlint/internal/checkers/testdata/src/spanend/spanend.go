// Package spanend is a dwlint fixture for the span lifecycle analyzer:
// discarded, blanked, never-ended, and leaky-early-return spans are
// flagged; defers, per-return Ends, and ownership transfers are not.
package spanend

import (
	"errors"

	"dwmaxerr/internal/obs"
)

var errFixture = errors.New("fixture")

func discard(t *obs.Tracer) {
	t.Start("load") // want "discarded"
}

func blank(t *obs.Tracer) {
	_ = t.Start("load") // want "assigned to _"
}

func neverEnded(t *obs.Tracer) {
	sp := t.Start("load") // want "never ended"
	_ = sp
}

func earlyReturn(t *obs.Tracer, fail bool) error {
	sp := t.Start("work")
	if fail {
		return errFixture // want "return without ending span sp"
	}
	sp.End()
	return nil
}

func inline(t *obs.Tracer) {
	helper(t.Start("x")) // want "created inline"
}

func helper(s *obs.Span) {}

func good(t *obs.Tracer) {
	sp := t.Start("parent")
	defer sp.End()
	c := sp.Child("step")
	c.End()
}

func goodDeferredClosure(t *obs.Tracer) {
	sp := t.Start("parent")
	defer func() {
		sp.End()
	}()
}

type holder struct{ sp *obs.Span }

// transfer hands the End obligation to the holder / the caller.
func transfer(t *obs.Tracer, h *holder) *obs.Span {
	h.sp = t.Start("held")
	return t.Start("returned")
}
