// Package emitretain is a dwlint fixture: each line carrying a `want`
// comment violates the arena retention contract; everything else is the
// clean idiom the analyzer must stay silent on.
package emitretain

import "dwmaxerr/internal/mr"

type sink struct {
	lastKey []byte
	rows    [][]byte
}

var global [][]byte

type pair struct{ k, v []byte }

// badReduce retains arena-backed group slices in ways that outlive the
// callback.
func badReduce(s *sink, ch chan []byte) mr.ReduceFunc {
	return func(ctx mr.TaskContext, key []byte, values [][]byte, emit mr.Emit) error {
		s.lastKey = key                    // want "stored in a field without copying"
		global = append(global, values[0]) // want "appended into global captured from outside"
		for _, v := range values {
			s.rows = append(s.rows, v) // want "appended into a field without copying"
		}
		ch <- key                       // want "sent on a channel"
		p := pair{k: key, v: values[0]} // want "aliased into a composite literal" "aliased into a composite literal"
		_ = p
		return emit(key, values[0])
	}
}

// badEmitFn is an Emit implementation that publishes its argument.
func badEmitFn(key, value []byte) error {
	globalKey = key // want "assigned to globalKey captured from outside"
	_ = value
	return nil
}

var globalKey []byte

// makeEmit captures an outer slice from an Emit closure — the classic
// clobbered-by-the-next-record bug.
func makeEmit() (mr.Emit, *[][]byte) {
	var rows [][]byte
	e := mr.Emit(func(key, value []byte) error {
		rows = append(rows, value) // want "appended into rows captured from outside"
		return nil
	})
	return e, &rows
}

// goodReduce shows the sanctioned patterns: explicit copies, local-only
// aliases, and passing slices onward to emit (which copies).
func goodReduce(s *sink) mr.ReduceFunc {
	return func(ctx mr.TaskContext, key []byte, values [][]byte, emit mr.Emit) error {
		s.lastKey = append([]byte(nil), key...) // copy: fine
		total := 0
		first := values[0] // local alias: fine until it escapes
		for _, v := range values {
			total += len(v)
		}
		if total > len(first) {
			return emit(key, first)
		}
		return emit(key, nil)
	}
}
