package goroleakclean

import "context"

type Server struct {
	stop chan struct{}
}

func (s *Server) Close() { close(s.stop) }

// Method-spawned loop selecting on the owner's stop field, which Close
// closes: the canonical shape.
func (s *Server) Serve() {
	go s.loop()
}

func (s *Server) loop() {
	for {
		select {
		case <-s.stop:
			return
		default:
		}
	}
}

// Constructor pattern: the go statement is in a plain function, but the
// spawned call is a method on the closable type.
func New() *Server {
	s := &Server{stop: make(chan struct{})}
	go s.loop()
	return s
}

// ctx.Done() counts as a stop signal.
type Poller struct{}

func (p *Poller) Shutdown() {}

func (p *Poller) Run(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
			}
		}
	}()
}

// A local stop channel the spawner closes on exit.
type Beater struct{}

func (b *Beater) Stop() {}

func (b *Beater) beat() {
	hbStop := make(chan struct{})
	defer close(hbStop)
	go func() {
		for {
			select {
			case <-hbStop:
				return
			default:
			}
		}
	}()
}

// No Close/Stop/Shutdown anywhere: out of scope, even with a for{}.
type Free struct{}

func (f *Free) Run() {
	go func() {
		for {
			f.tick()
		}
	}()
}

func (f *Free) tick() {}

// Short-lived goroutine: no unconditional loop, Close need not
// interrupt it.
func (s *Server) once() {
	go func() {
		n := 0
		_ = n
	}()
}
