package atomicpub

import "sync/atomic"

type snap struct {
	n     int
	items []int
}

var cur atomic.Pointer[snap]

var boxed atomic.Value

func bad() {
	s := &snap{}
	cur.Store(s)
	s.n = 1 // want "write through s.n after s was published via atomic Store"
}

func badSwap() {
	s := &snap{}
	old := cur.Swap(s)
	_ = old
	s.n = 2 // want "published via atomic Swap"
}

func badBranch(c bool) {
	s := &snap{}
	cur.Store(s)
	if c {
		s.items[0] = 3 // want "write through s"
	}
}

func badGoroutine() {
	s := &snap{}
	cur.Store(s)
	go func() {
		s.n = 4 // want "write through s.n"
	}()
}

func badValue() {
	s := &snap{}
	boxed.Store(s)
	s.n = 5 // want "published via atomic Store"
}

func badLoop() {
	s := &snap{}
	for i := 0; i < 3; i++ {
		s.n++ // want "write through s.n"
		cur.Store(s)
	}
}
