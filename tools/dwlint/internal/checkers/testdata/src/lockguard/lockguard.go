// Package lockguard is a dwlint fixture covering both annotation forms
// (sibling mutex and foreign Type.mu), the exemptions, and an
// unenforceable annotation.
package lockguard

import "sync"

type counterSet struct {
	mu sync.Mutex
	n  int // guarded by mu
}

func (c *counterSet) bad() int {
	return c.n // want "guarded by c.mu"
}

func (c *counterSet) good() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// addLocked is exempt: the Locked suffix documents the caller's lock.
func (c *counterSet) addLocked(d int) { c.n += d }

// bump may only be called while the caller holds c.mu.
func (c *counterSet) bump() { c.n++ }

// sneaky locks only inside a spawned goroutine; the outer read is still
// unprotected.
func (c *counterSet) sneaky() int {
	go func() {
		c.mu.Lock()
		c.n++
		c.mu.Unlock()
	}()
	return c.n // want "guarded by c.mu"
}

type hub struct {
	mu    sync.Mutex
	conns []*conn
}

type conn struct {
	busy bool // guarded by hub.mu
}

func (h *hub) markBusy(c *conn) {
	h.mu.Lock()
	c.busy = true
	h.mu.Unlock()
}

func pollBad(c *conn) bool {
	return c.busy // want "guarded by hub.mu"
}

type broken struct {
	x int // guarded by nothing // want "unenforceable guard annotation"
}
