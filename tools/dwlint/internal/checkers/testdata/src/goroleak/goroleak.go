package goroleak

// Server has a stop channel and closes it — but its accept loop never
// listens, so Close leaves the goroutine blocked forever.
type Server struct {
	stop chan struct{}
}

func (s *Server) Close() { close(s.stop) }

func (s *Server) Serve() {
	go s.acceptLoop() // want "loops forever without receiving from a done/ctx stop signal"
}

func (s *Server) acceptLoop() {
	for {
		s.accept()
	}
}

func (s *Server) accept() {}

func (s *Server) pump() {
	go func() { // want "loops forever without receiving"
		for {
			s.accept()
		}
	}()
}

// Watcher's loop does wait on a field — but nothing ever closes or
// sends on it, so Stop is a no-op and the goroutine still leaks.
type Watcher struct {
	done chan struct{}
}

func (w *Watcher) Stop() {}

func (w *Watcher) Start() {
	go w.loop() // want "nothing in the package closes or sends to it"
}

func (w *Watcher) loop() {
	for {
		select {
		case <-w.done:
			return
		}
	}
}
