package lockorderclean

import "sync"

type A struct {
	mu    sync.Mutex
	count int // guarded by mu
}

type B struct{ mu sync.Mutex }

// Both call paths take A.mu before B.mu: consistent order, no cycle.
func ab(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
}

func abDeferred(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock()
	defer b.mu.Unlock()
	a.count++
}

// released relocks A.mu only after B.mu is released: no B->A edge.
func released(a *A, b *B) {
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Lock()
	a.mu.Unlock()
}

// handOver locks two *different instances* of the same type; the
// identity is type-level, so this must not count as a self-cycle.
func handOver(x, y *A) {
	x.mu.Lock()
	y.mu.Lock()
	x.mu.Unlock()
	y.mu.Unlock()
}

// spawn starts a goroutine that takes B.mu while A.mu is held by the
// spawner. The goroutine runs on its own stack: no A->B ordering.
func spawn(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	go lockB(b)
}

func lockB(b *B) {
	b.mu.Lock()
	b.mu.Unlock()
}

func bFirst(a *A, b *B) {
	b.mu.Lock()
	defer b.mu.Unlock()
}

// branches takes B.mu on one arm and A.mu on the other; the arms never
// both execute, so no conflicting order arises beyond the consistent
// A-before-B above.
func branches(a *A, b *B, which bool) {
	if which {
		a.mu.Lock()
		b.mu.Lock()
		b.mu.Unlock()
		a.mu.Unlock()
	} else {
		b.mu.Lock()
		b.mu.Unlock()
		a.mu.Lock()
		a.mu.Unlock()
	}
}
