package checkers

import (
	"go/ast"
	"go/constant"
	"go/types"
	"path/filepath"
	"regexp"

	"dwmaxerr/tools/dwlint/internal/anz"
)

// chaosPath is the failpoint registry package.
const chaosPath = "dwmaxerr/internal/chaos"

// chaosNameRe is the failpoint naming convention: dotted lowercase with a
// subsystem prefix ("mr.worker.send", "dist.probe", "serve.query").
var chaosNameRe = regexp.MustCompile(`^[a-z0-9]+(\.[a-z0-9]+)+$`)

// Chaospoint enforces the failpoint registration contract: every
// chaos.Point call names its point with a constant declared in the calling
// package's chaos.go, matching the dotted-lowercase convention. A spec rule
// targets points by exact name, so a name invented inline at a call site —
// or drifted into another file — is a failpoint no chaos schedule can
// reach and no reader can discover. The one indirection allowed is a
// carrier field/variable named chaosPoint (the wire layer parameterizes
// its writer per endpoint); every assignment to a carrier is held to the
// same constant-from-chaos.go rule, keeping the indirection closed.
var Chaospoint = &anz.Analyzer{
	Name: "chaospoint",
	Doc:  "chaos.Point names must be constants declared in the package's chaos.go (carrier fields named chaosPoint may relay them)",
	Run:  runChaospoint,
}

func runChaospoint(pass *anz.Pass) error {
	// The chaos package itself defines Point; it registers no points.
	if pass.Pkg.Path() == chaosPath {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkChaosCall(pass, n)
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					if i < len(n.Rhs) && isChaosCarrier(lhs) {
						checkCarrierValue(pass, n.Rhs[i])
					}
				}
			case *ast.KeyValueExpr:
				if key, ok := n.Key.(*ast.Ident); ok {
					if f, ok := pass.Info.Uses[key].(*types.Var); ok && f.IsField() && f.Name() == "chaosPoint" {
						checkCarrierValue(pass, n.Value)
					}
				}
			}
			return true
		})
	}
	return nil
}

func checkChaosCall(pass *anz.Pass, call *ast.CallExpr) {
	if !pkgFunc(pass, call, chaosPath, "Point") || len(call.Args) != 1 {
		return
	}
	arg := ast.Unparen(call.Args[0])
	if pass.Info.Types[arg].Value == nil {
		// Dynamic name: only a designated carrier may relay one.
		if !isChaosCarrier(arg) {
			pass.Reportf(arg.Pos(), "chaos.Point name must be a constant declared in this package's chaos.go (or relayed by a chaosPoint carrier field)")
		}
		return
	}
	checkChaosConst(pass, arg, false)
}

// checkCarrierValue holds one value assigned to a chaosPoint carrier to
// the registration contract. The empty string (injection off) is allowed.
func checkCarrierValue(pass *anz.Pass, rhs ast.Expr) {
	rhs = ast.Unparen(rhs)
	if isChaosCarrier(rhs) { // carrier-to-carrier relay
		return
	}
	tv := pass.Info.Types[rhs]
	if tv.Value != nil && tv.Value.Kind() == constant.String && constant.StringVal(tv.Value) == "" {
		return
	}
	checkChaosConst(pass, rhs, true)
}

// checkChaosConst requires expr to be a use of a string constant declared
// in this package's chaos.go with a well-formed dotted name.
func checkChaosConst(pass *anz.Pass, expr ast.Expr, assigned bool) {
	subject := "chaos.Point name"
	if assigned {
		subject = "value assigned to a chaosPoint carrier"
	}
	id, _ := ast.Unparen(expr).(*ast.Ident)
	if id == nil {
		pass.Reportf(expr.Pos(), "%s must be a constant declared in this package's chaos.go, not an inline value — a point no chaos spec can discover", subject)
		return
	}
	obj, ok := pass.Info.Uses[id].(*types.Const)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != pass.Pkg.Path() ||
		filepath.Base(pass.Fset.Position(obj.Pos()).Filename) != "chaos.go" {
		pass.Reportf(expr.Pos(), "%s must be a constant declared in this package's chaos.go so the package's failpoint surface is auditable in one place", subject)
		return
	}
	if tv := pass.Info.Types[expr]; tv.Value != nil && tv.Value.Kind() == constant.String {
		if name := constant.StringVal(tv.Value); !chaosNameRe.MatchString(name) {
			pass.Reportf(expr.Pos(), "chaos point name %q does not match %s", name, chaosNameRe)
		}
	}
}

// isChaosCarrier reports whether expr is a field or variable named
// chaosPoint — the sanctioned indirection for parameterized injection.
func isChaosCarrier(expr ast.Expr) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return e.Name == "chaosPoint"
	case *ast.SelectorExpr:
		return e.Sel.Name == "chaosPoint"
	}
	return false
}
