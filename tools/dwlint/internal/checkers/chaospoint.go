package checkers

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"

	"dwmaxerr/tools/dwlint/internal/anz"
)

// chaosPath is the failpoint registry package.
const chaosPath = "dwmaxerr/internal/chaos"

// chaosNameRe is the failpoint naming convention: dotted lowercase with a
// subsystem prefix ("mr.worker.send", "dist.probe", "serve.query").
var chaosNameRe = regexp.MustCompile(`^[a-z0-9]+(\.[a-z0-9]+)+$`)

// Chaospoint enforces the failpoint registration contract: every
// chaos.Point call names its point with a constant declared in the calling
// package's chaos.go, matching the dotted-lowercase convention. A spec rule
// targets points by exact name, so a name invented inline at a call site —
// or drifted into another file — is a failpoint no chaos schedule can
// reach and no reader can discover. The one indirection allowed is a
// carrier field/variable named chaosPoint (the wire layer parameterizes
// its writer per endpoint); every assignment to a carrier is held to the
// same constant-from-chaos.go rule, keeping the indirection closed.
var Chaospoint = &anz.Analyzer{
	Name:   "chaospoint",
	Doc:    "chaos.Point names must be constants declared in the package's chaos.go (carrier fields named chaosPoint may relay them); chaos.New fault specs in tests must name declared points",
	Run:    runChaospoint,
	Finish: finishChaospoint,
}

// chaosFact is one package's failpoint surface plus the fault specs its
// tests wire up. Finish checks each spec against the union of every
// package's declared points, because soak tests routinely inject faults
// across subsystem boundaries ("mr.worker.send" from a dist test).
type chaosFact struct {
	Points []string
	Specs  []chaosSpecUse
}

type chaosSpecUse struct {
	Pos  token.Position
	Spec string
}

func runChaospoint(pass *anz.Pass) error {
	// The chaos package itself defines Point; it registers no points.
	if pass.Pkg.Path() == chaosPath {
		return nil
	}
	fact := chaosFact{Points: declaredChaosPoints(pass)}
	for _, tf := range pass.TestFiles {
		fact.Specs = append(fact.Specs, collectChaosSpecs(pass, tf)...)
	}
	if len(fact.Points) > 0 || len(fact.Specs) > 0 {
		pass.ExportFact(fact)
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkChaosCall(pass, n)
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					if i < len(n.Rhs) && isChaosCarrier(lhs) {
						checkCarrierValue(pass, n.Rhs[i])
					}
				}
			case *ast.KeyValueExpr:
				if key, ok := n.Key.(*ast.Ident); ok {
					if f, ok := pass.Info.Uses[key].(*types.Var); ok && f.IsField() && f.Name() == "chaosPoint" {
						checkCarrierValue(pass, n.Value)
					}
				}
			}
			return true
		})
	}
	return nil
}

func checkChaosCall(pass *anz.Pass, call *ast.CallExpr) {
	if !pkgFunc(pass, call, chaosPath, "Point") || len(call.Args) != 1 {
		return
	}
	arg := ast.Unparen(call.Args[0])
	if pass.Info.Types[arg].Value == nil {
		// Dynamic name: only a designated carrier may relay one.
		if !isChaosCarrier(arg) {
			pass.Reportf(arg.Pos(), "chaos.Point name must be a constant declared in this package's chaos.go (or relayed by a chaosPoint carrier field)")
		}
		return
	}
	checkChaosConst(pass, arg, false)
}

// checkCarrierValue holds one value assigned to a chaosPoint carrier to
// the registration contract. The empty string (injection off) is allowed.
func checkCarrierValue(pass *anz.Pass, rhs ast.Expr) {
	rhs = ast.Unparen(rhs)
	if isChaosCarrier(rhs) { // carrier-to-carrier relay
		return
	}
	tv := pass.Info.Types[rhs]
	if tv.Value != nil && tv.Value.Kind() == constant.String && constant.StringVal(tv.Value) == "" {
		return
	}
	checkChaosConst(pass, rhs, true)
}

// checkChaosConst requires expr to be a use of a string constant declared
// in this package's chaos.go with a well-formed dotted name.
func checkChaosConst(pass *anz.Pass, expr ast.Expr, assigned bool) {
	subject := "chaos.Point name"
	if assigned {
		subject = "value assigned to a chaosPoint carrier"
	}
	id, _ := ast.Unparen(expr).(*ast.Ident)
	if id == nil {
		pass.Reportf(expr.Pos(), "%s must be a constant declared in this package's chaos.go, not an inline value — a point no chaos spec can discover", subject)
		return
	}
	obj, ok := pass.Info.Uses[id].(*types.Const)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != pass.Pkg.Path() ||
		filepath.Base(pass.Fset.Position(obj.Pos()).Filename) != "chaos.go" {
		pass.Reportf(expr.Pos(), "%s must be a constant declared in this package's chaos.go so the package's failpoint surface is auditable in one place", subject)
		return
	}
	if tv := pass.Info.Types[expr]; tv.Value != nil && tv.Value.Kind() == constant.String {
		if name := constant.StringVal(tv.Value); !chaosNameRe.MatchString(name) {
			pass.Reportf(expr.Pos(), "chaos point name %q does not match %s", name, chaosNameRe)
		}
	}
}

// declaredChaosPoints lists the well-formed string constants declared
// in this package's chaos.go — its registered failpoint surface.
func declaredChaosPoints(pass *anz.Pass) []string {
	var points []string
	for _, file := range pass.Files {
		if filepath.Base(pass.Fset.Position(file.Pos()).Filename) != "chaos.go" {
			continue
		}
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					c, ok := pass.Info.Defs[name].(*types.Const)
					if !ok || c.Val().Kind() != constant.String {
						continue
					}
					if v := constant.StringVal(c.Val()); chaosNameRe.MatchString(v) {
						points = append(points, v)
					}
				}
			}
		}
	}
	return points
}

// collectChaosSpecs scans a test file (parsed, not type-checked) for
// chaos.New calls and resolves their fault-spec argument. String
// literals, concatenations, and identifiers naming string constants of
// the package under test resolve; anything else (a spec built in a
// loop variable) is skipped — this is a best-effort net for typo'd
// point names, not an evaluator.
func collectChaosSpecs(pass *anz.Pass, file *ast.File) []chaosSpecUse {
	chaosName := importName(file, chaosPath, "chaos")
	if chaosName == "" {
		return nil
	}
	var uses []chaosSpecUse
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 2 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "New" {
			return true
		}
		if x, ok := sel.X.(*ast.Ident); !ok || x.Name != chaosName {
			return true
		}
		spec, ok := resolveSpecString(pass, call.Args[1])
		if !ok {
			return true
		}
		uses = append(uses, chaosSpecUse{Pos: pass.Fset.Position(call.Args[1].Pos()), Spec: spec})
		return true
	})
	return uses
}

// importName returns the local name the file imports path under, or ""
// if the file does not import it.
func importName(file *ast.File, path, base string) string {
	for _, imp := range file.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil || p != path {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name
		}
		return base
	}
	return ""
}

// resolveSpecString evaluates a fault-spec expression without type
// info: quoted literals, + concatenations of resolvable parts, and
// identifiers naming string constants in the package under test's
// scope (test files of the same package see them directly).
func resolveSpecString(pass *anz.Pass, e ast.Expr) (string, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.BasicLit:
		if e.Kind != token.STRING {
			return "", false
		}
		s, err := strconv.Unquote(e.Value)
		return s, err == nil
	case *ast.BinaryExpr:
		if e.Op != token.ADD {
			return "", false
		}
		l, ok := resolveSpecString(pass, e.X)
		if !ok {
			return "", false
		}
		r, ok := resolveSpecString(pass, e.Y)
		if !ok {
			return "", false
		}
		return l + r, true
	case *ast.Ident:
		c, ok := pass.Pkg.Scope().Lookup(e.Name).(*types.Const)
		if !ok || c.Val().Kind() != constant.String {
			return "", false
		}
		return constant.StringVal(c.Val()), true
	}
	return "", false
}

// finishChaospoint checks every resolved fault spec against the union
// of declared points. Only the point-name prefix of each `;`-separated
// rule is validated; the fault grammar after the first `:` belongs to
// the chaos package's own parser.
func finishChaospoint(fs *anz.FactStore, report anz.ReportFunc) error {
	declared := map[string]bool{}
	var specs []chaosSpecUse
	for _, f := range fs.Facts("chaospoint") {
		cf, ok := f.Value.(chaosFact)
		if !ok {
			continue
		}
		for _, p := range cf.Points {
			declared[p] = true
		}
		specs = append(specs, cf.Specs...)
	}
	for _, use := range specs {
		for _, ruleSpec := range strings.Split(use.Spec, ";") {
			ruleSpec = strings.TrimSpace(ruleSpec)
			if ruleSpec == "" {
				continue
			}
			name := ruleSpec
			if i := strings.Index(name, ":"); i >= 0 {
				name = name[:i]
			}
			if !declared[name] {
				report(use.Pos, "chaos spec targets undeclared point %q — no chaosPoint constant with that value exists in any package's chaos.go", name)
			}
		}
	}
	return nil
}

// isChaosCarrier reports whether expr is a field or variable named
// chaosPoint — the sanctioned indirection for parameterized injection.
func isChaosCarrier(expr ast.Expr) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return e.Name == "chaosPoint"
	case *ast.SelectorExpr:
		return e.Sel.Name == "chaosPoint"
	}
	return false
}
