package checkers

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"dwmaxerr/tools/dwlint/internal/anz"
)

// Lockguard turns `// guarded by <mu>` field comments from prose into an
// enforced contract. Two annotation forms are recognized, matching the
// two locking regimes in internal/mr/tcp.go:
//
//	sendMu sync.Mutex // guards fw
//	dead   bool       // guarded by mu              (sibling mutex field)
//	busy   bool       // guarded by Coordinator.mu  (another struct's mutex)
//
// Every read or write of an annotated field must be preceded, within the
// same (innermost) function, by a Lock or RLock call on the named mutex:
// for sibling guards the mutex must hang off the same base expression as
// the access (w.dead needs w.mu.Lock / x.w.dead needs x.w.mu.Lock); for
// foreign guards any value of the owning type may hold the lock (w.dead
// needs some c.mu.Lock with c a Coordinator). Composite-literal
// construction is exempt (the value is unpublished), as are functions
// whose name ends in "Locked" or whose doc says the caller holds the
// lock.
//
// The check is lexical, not a dominance analysis: a Lock anywhere
// earlier in the same function satisfies it, and Unlocks are ignored.
// That is deliberately the same precision as a human reviewer scanning
// one function — it catches the lock-free field read that reintroduces
// the seed's data race, at zero false positives on lock/unlock/relock
// sequences.
var Lockguard = &anz.Analyzer{
	Name: "lockguard",
	Doc:  "fields annotated `// guarded by <mu>` may only be accessed with the named lock held",
	Run:  runLockguard,
}

// guardSpec is one parsed annotation.
type guardSpec struct {
	sibling string       // mutex field on the same struct ("mu")
	foreign *types.Named // owning type for Type.mu guards
	field   string       // mutex field name on the foreign type
}

var guardedByRe = regexp.MustCompile(`(?i)guarded by\s+([A-Za-z_][A-Za-z0-9_]*)(?:\.([A-Za-z_][A-Za-z0-9_]*))?`)

func runLockguard(pass *anz.Pass) error {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil
	}
	for _, file := range pass.Files {
		anz.InspectStack(file, func(n ast.Node, stack []ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			selection := pass.Info.Selections[sel]
			if selection == nil || selection.Kind() != types.FieldVal {
				return true
			}
			field, ok := selection.Obj().(*types.Var)
			if !ok {
				return true
			}
			spec, guarded := guards[field]
			if !guarded {
				return true
			}
			checkGuardedAccess(pass, sel, field, spec, stack)
			return true
		})
	}
	return nil
}

// collectGuards parses every struct field annotation in the package.
func collectGuards(pass *anz.Pass) map[*types.Var]guardSpec {
	guards := map[*types.Var]guardSpec{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, f := range st.Fields.List {
				m := matchGuardComment(f)
				if m == nil {
					continue
				}
				spec, err := resolveGuard(pass, st, m)
				if err != "" {
					pass.Reportf(f.Pos(), "unenforceable guard annotation: %s", err)
					continue
				}
				for _, name := range f.Names {
					if v, ok := pass.Info.Defs[name].(*types.Var); ok {
						guards[v] = spec
					}
				}
			}
			return true
		})
	}
	return guards
}

// matchGuardComment scans a field's doc and trailing comments for a
// guarded-by annotation.
func matchGuardComment(f *ast.Field) []string {
	for _, cg := range []*ast.CommentGroup{f.Doc, f.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRe.FindStringSubmatch(cg.Text()); m != nil {
			return m
		}
	}
	return nil
}

// resolveGuard validates an annotation against the package scope: a
// sibling guard must name a mutex field of the same struct, a foreign
// guard a Type.mu pair in this package. Returning a non-empty string
// reports the annotation itself as a finding — a guard that cannot be
// resolved protects nothing.
func resolveGuard(pass *anz.Pass, st *ast.StructType, m []string) (guardSpec, string) {
	name, sub := m[1], m[2]
	if sub == "" {
		for _, f := range st.Fields.List {
			for _, fn := range f.Names {
				if fn.Name == name {
					if v, ok := pass.Info.Defs[fn].(*types.Var); ok && isMutex(v.Type()) {
						return guardSpec{sibling: name}, ""
					}
					return guardSpec{}, "field " + name + " is not a sync.Mutex/RWMutex"
				}
			}
		}
		return guardSpec{}, "no sibling field named " + name
	}
	obj := pass.Pkg.Scope().Lookup(name)
	if obj == nil {
		return guardSpec{}, "no type named " + name + " in this package"
	}
	named, ok := obj.Type().(*types.Named)
	if !ok {
		return guardSpec{}, name + " is not a named type"
	}
	stru, ok := named.Underlying().(*types.Struct)
	if !ok {
		return guardSpec{}, name + " is not a struct"
	}
	for i := 0; i < stru.NumFields(); i++ {
		if f := stru.Field(i); f.Name() == sub {
			if !isMutex(f.Type()) {
				return guardSpec{}, name + "." + sub + " is not a sync.Mutex/RWMutex"
			}
			return guardSpec{foreign: named, field: sub}, ""
		}
	}
	return guardSpec{}, name + " has no field " + sub
}

func isMutex(t types.Type) bool {
	return isNamed(t, "sync", "Mutex") || isNamed(t, "sync", "RWMutex")
}

// checkGuardedAccess verifies one annotated-field access against the
// lock calls earlier in its innermost enclosing function.
func checkGuardedAccess(pass *anz.Pass, sel *ast.SelectorExpr, field *types.Var, spec guardSpec, stack []ast.Node) {
	fnNode := innermostFunc(stack)
	if fnNode == nil {
		return // package-level initialization
	}
	if decl, ok := fnNode.(*ast.FuncDecl); ok {
		if strings.HasSuffix(decl.Name.Name, "Locked") {
			return
		}
		if decl.Doc != nil && strings.Contains(strings.ToLower(decl.Doc.Text()), "caller holds") {
			return
		}
	}
	_, body, _ := funcParts(fnNode)

	want := ""
	held := false
	anz.InspectStack(body, func(n ast.Node, st []ast.Node) bool {
		if held || n.Pos() >= sel.Pos() {
			return !held
		}
		// A Lock inside a nested function literal (e.g. a spawned
		// goroutine) does not protect this scope.
		if _, _, isFn := funcParts(n); isFn {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		lockSel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (lockSel.Sel.Name != "Lock" && lockSel.Sel.Name != "RLock") {
			return true
		}
		recv, ok := ast.Unparen(lockSel.X).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if spec.sibling != "" {
			if recv.Sel.Name == spec.sibling &&
				types.ExprString(recv.X) == types.ExprString(sel.X) {
				held = true
			}
		} else {
			if recv.Sel.Name == spec.field {
				if tv, ok := pass.Info.Types[recv.X]; ok && namedFrom(tv.Type) == spec.foreign {
					held = true
				}
			}
		}
		return true
	})
	if held {
		return
	}
	if spec.sibling != "" {
		base := types.ExprString(sel.X)
		want = base + "." + spec.sibling
	} else {
		want = spec.foreign.Obj().Name() + "." + spec.field
	}
	pass.Reportf(sel.Pos(), "%s is guarded by %s: no %s.Lock()/RLock() earlier in this function (lock it, or mark the function name ...Locked / doc it 'caller holds')",
		field.Name(), want, want)
}
