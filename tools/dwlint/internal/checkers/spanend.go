package checkers

import (
	"go/ast"
	"go/token"
	"go/types"

	"dwmaxerr/tools/dwlint/internal/anz"
)

// Spanend enforces the tracing lifecycle: every span returned by
// Tracer.Start or Span.Child must reach End() on all paths of its
// creating function — via defer, or via an End call before each
// subsequent return. An un-ended span renders as an open interval
// stretching to export time in the Chrome trace, and its subtree keeps
// growing, so one missed early-return quietly corrupts every profile
// taken through that path.
//
// Ownership transfers are recognized: returning the span or storing it
// into a field/container hands the End obligation to the receiver.
// Passing a span as a call argument does NOT transfer ownership (the
// engines pass phase spans down while still ending them locally).
var Spanend = &anz.Analyzer{
	Name: "spanend",
	Doc:  "every Tracer.Start/Span.Child result must reach End on all paths (defer or per-return)",
	Run:  runSpanend,
}

func runSpanend(pass *anz.Pass) error {
	// The obs package constructs spans; the lifecycle contract binds its
	// callers.
	if pass.Pkg.Path() == obsPath {
		return nil
	}
	for _, file := range pass.Files {
		anz.InspectStack(file, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isSpanCreate(pass, call) {
				return true
			}
			checkSpanUse(pass, call, stack)
			return true
		})
	}
	return nil
}

func isSpanCreate(pass *anz.Pass, call *ast.CallExpr) bool {
	return methodOn(pass, call, obsPath, "Tracer", "Start") ||
		methodOn(pass, call, obsPath, "Span", "Child")
}

// checkSpanUse classifies the syntactic context of one span-creating
// call and reports lifecycle violations.
func checkSpanUse(pass *anz.Pass, call *ast.CallExpr, stack []ast.Node) {
	if len(stack) == 0 {
		return
	}
	parent := stack[len(stack)-1]
	switch p := parent.(type) {
	case *ast.ExprStmt:
		pass.Reportf(call.Pos(), "span result is discarded: it can never be ended")
		return
	case *ast.ReturnStmt:
		return // ownership transfers to the caller
	case *ast.AssignStmt:
		// v := span / v = span: find the matched LHS.
		for i, rhs := range p.Rhs {
			if ast.Unparen(rhs) != ast.Node(call) || i >= len(p.Lhs) {
				continue
			}
			switch lhs := p.Lhs[i].(type) {
			case *ast.Ident:
				if lhs.Name == "_" {
					pass.Reportf(call.Pos(), "span assigned to _: it can never be ended")
					return
				}
				obj := pass.Info.Defs[lhs]
				if obj == nil {
					obj = pass.Info.Uses[lhs]
				}
				if v, ok := obj.(*types.Var); ok {
					checkSpanVar(pass, call, v, stack)
					return
				}
			default:
				return // stored into a field/index: ownership escapes to the holder
			}
		}
		return
	case *ast.KeyValueExpr, *ast.CompositeLit:
		return // stored in a composite: ownership escapes to the holder
	case *ast.CallExpr, *ast.SelectorExpr:
		// Raw argument (f(t.Start("x"))) or chained receiver
		// (span.Child("x").SetInt(...)): the expression is consumed with
		// nobody left holding a reference to End.
		pass.Reportf(call.Pos(), "span created inline inside another expression: assign it so it can be ended")
		return
	}
}

// checkSpanVar verifies the lifecycle of span variable v within its
// creating function: a defer v.End() (directly or inside a deferred
// closure), or an End call before every subsequent return in the same
// function scope.
func checkSpanVar(pass *anz.Pass, call *ast.CallExpr, v *types.Var, stack []ast.Node) {
	fnNode := innermostFunc(stack)
	if fnNode == nil {
		return // package-level span var: lifecycle is the program's
	}
	_, body, _ := funcParts(fnNode)

	var (
		deferred  bool
		escapes   bool
		endsAny   []token.Pos // End calls anywhere inside fnNode, nested literals included
		endsScope []token.Pos // End calls in fnNode's own scope (not nested literals)
		returns   []token.Pos // returns in fnNode's own scope after the assignment
	)
	anz.InspectStack(body, func(n ast.Node, st []ast.Node) bool {
		sameScope := enclosingIsSame(st, fnNode, body)
		switch node := n.(type) {
		case *ast.DeferStmt:
			if isEndCallOn(pass, node.Call, v) {
				deferred = true
			}
			if lit, ok := node.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if c, ok := m.(*ast.CallExpr); ok && isEndCallOn(pass, c, v) {
						deferred = true
					}
					return true
				})
			}
		case *ast.CallExpr:
			if isEndCallOn(pass, node, v) {
				endsAny = append(endsAny, node.Pos())
				if sameScope {
					endsScope = append(endsScope, node.Pos())
				}
			}
		case *ast.ReturnStmt:
			if sameScope && node.Pos() > call.Pos() {
				returns = append(returns, node.Pos())
			}
			for _, res := range node.Results {
				if usesVar(pass, res, v) {
					escapes = true
				}
			}
		case *ast.AssignStmt:
			// v stored into a field, index, or outer variable: ownership
			// escapes to the holder.
			for i, rhs := range node.Rhs {
				if !usesVar(pass, rhs, v) || i >= len(node.Lhs) {
					continue
				}
				switch node.Lhs[i].(type) {
				case *ast.SelectorExpr, *ast.IndexExpr:
					escapes = true
				}
			}
		case *ast.KeyValueExpr:
			if usesVar(pass, node.Value, v) {
				escapes = true
			}
		}
		return true
	})

	if deferred || escapes {
		return
	}
	if len(endsAny) == 0 {
		pass.Reportf(call.Pos(), "span %s is never ended: add defer %s.End() or End it before each return", v.Name(), v.Name())
		return
	}
	for _, ret := range returns {
		ended := false
		for _, end := range endsScope {
			if end > call.Pos() && end < ret {
				ended = true
				break
			}
		}
		if !ended {
			pass.Reportf(ret, "return without ending span %s (created at line %d): End it on this path or use defer", v.Name(), pass.Fset.Position(call.Pos()).Line)
		}
	}
}

// enclosingIsSame reports whether the innermost function enclosing the
// current node (per the walk stack rooted at body) is fnNode itself,
// i.e. the node is not inside a nested function literal.
func enclosingIsSame(stack []ast.Node, fnNode ast.Node, body *ast.BlockStmt) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		if _, _, ok := funcParts(stack[i]); ok {
			return false // a literal between body and the node
		}
	}
	_ = fnNode
	_ = body
	return true
}

// isEndCallOn matches the call v.End().
func isEndCallOn(pass *anz.Pass, call *ast.CallExpr, v *types.Var) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && pass.Info.Uses[id] == v
}

// usesVar reports whether expr mentions v as a bare identifier.
func usesVar(pass *anz.Pass, expr ast.Expr, v *types.Var) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == v {
			found = true
		}
		return !found
	})
	return found
}
