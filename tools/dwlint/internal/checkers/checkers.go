// Package checkers holds the dwlint analyzers, each encoding one
// contract the engine states in prose:
//
//   - atomicpub: a value published via atomic Store/Swap (the ingest
//     snapshot path) is immutable afterwards — no writes through it on
//     any CFG path past the publish.
//   - chaospoint: chaos.Point failpoint names are constants declared in
//     the package's chaos.go (chaosPoint carrier fields may relay them,
//     and chaos.New fault specs in tests must name declared points).
//   - emitretain: the arena pooling contract (mr/arena.go) — Emit
//     implementations copy before returning, reduce callbacks don't
//     retain group slices.
//   - goroleak: goroutines spawned by closable types select on a
//     done/ctx signal their Close/Stop/Shutdown triggers.
//   - lockguard: `// guarded by <mu>` field annotations (mr/tcp.go) are
//     enforced, not just documented.
//   - lockorder: the whole-program lock-acquisition graph is acyclic
//     (`dwlint -lockgraph` dumps it as DOT).
//   - metricname: obs metric names are compile-time constants matching
//     ^(mr|dist|serve)_[a-z0-9_]+$, declared in the package's metrics.go.
//   - spanend: every Tracer.Start / Span.Child result reaches End on all
//     paths (defer or per-return).
//   - wireappend: task hot loops use the mr.Append* codec helpers, never
//     per-record gob / binary.Write (the PR 2 shuffle fast path).
package checkers

import (
	"go/ast"
	"go/types"

	"dwmaxerr/tools/dwlint/internal/anz"
)

// Import paths of the packages whose types key the checks.
const (
	mrPath  = "dwmaxerr/internal/mr"
	obsPath = "dwmaxerr/internal/obs"
)

// All returns every analyzer, in the order the multichecker runs them.
func All() []*anz.Analyzer {
	return []*anz.Analyzer{
		Atomicpub,
		Chaospoint,
		Emitretain,
		Goroleak,
		Lockguard,
		Lockorder,
		Metricname,
		Spanend,
		Wireappend,
	}
}

// namedFrom unwraps pointers and aliases to the defining *types.Named,
// or nil.
func namedFrom(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := types.Unalias(t).(*types.Named)
	return n
}

// isNamed reports whether t (or *t) is the named type pkgPath.name.
func isNamed(t types.Type, pkgPath, name string) bool {
	n := namedFrom(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// methodOn resolves call's callee as a method named name on the named
// type pkgPath.recvName, returning false otherwise.
func methodOn(pass *anz.Pass, call *ast.CallExpr, pkgPath, recvName, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return isNamed(sig.Recv().Type(), pkgPath, recvName)
}

// pkgFunc resolves call's callee as the package-level function
// pkgPath.name, returning false otherwise.
func pkgFunc(pass *anz.Pass, call *ast.CallExpr, pkgPath, name string) bool {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return false
	}
	fn, ok := pass.Info.Uses[id].(*types.Func)
	if !ok || fn.Name() != name || fn.Pkg() == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath
}

// funcParts returns the type and body of a function declaration or
// literal node, or false for any other node.
func funcParts(n ast.Node) (*ast.FuncType, *ast.BlockStmt, bool) {
	switch fn := n.(type) {
	case *ast.FuncDecl:
		return fn.Type, fn.Body, true
	case *ast.FuncLit:
		return fn.Type, fn.Body, true
	}
	return nil, nil, false
}

// innermostFunc returns the innermost enclosing function node from an
// InspectStack ancestor stack, or nil.
func innermostFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		if _, _, ok := funcParts(stack[i]); ok {
			return stack[i]
		}
	}
	return nil
}
