package checkers

import (
	"testing"

	"dwmaxerr/tools/dwlint/internal/anz/anztest"
)

func TestSpanend(t *testing.T) { anztest.Run(t, Spanend, "spanend") }
