package checkers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"dwmaxerr/tools/dwlint/internal/anz"
)

// Lockorder derives a whole-program lock-acquisition graph and reports
// every cycle in it. A node is a lock identity — a mutex field of a
// named struct type ("mr.Coordinator.mu"), or a package-level mutex
// variable ("mr.registryMu"). An edge A → B means some execution path
// acquires B while holding A:
//
//   - directly: a Lock/RLock on B downstream of a Lock on A (on any CFG
//     path, before an Unlock of A — the held-set is a forward may-
//     dataflow over the per-function CFG, so branches, loops and early
//     returns are modeled, and `defer mu.Unlock()` correctly keeps the
//     lock held to function exit);
//   - through calls: holding A and calling a function whose transitive
//     may-acquire summary contains B. Summaries cross package
//     boundaries through the driver's fact store (`go list -deps`
//     order guarantees callee packages are summarized first).
//     Interface calls and function values are not resolved — the
//     analysis is deliberately lightweight.
//
// Any cycle in the union of all packages' edges is a potential deadlock
// by the classical lock-ordering argument, and is reported at every
// edge that participates. The `// guarded by` annotations lockguard
// enforces seed the node set, so annotated-but-never-nested locks still
// appear (isolated) in the `dwlint -lockgraph` DOT artifact.
//
// Locks held at a `go` statement do not flow into the spawned
// goroutine (it runs on its own stack), and locks local to a function
// (instance identity unknowable) are skipped. A second Lock of the
// *same* identity is recorded as a self-edge only when the receiver
// expression matches textually (x.mu.Lock twice) or when it arrives
// through a call summary — hand-over-hand locking of two instances of
// one type would otherwise false-positive.
var Lockorder = &anz.Analyzer{
	Name:   "lockorder",
	Doc:    "the whole-program lock-acquisition graph must be acyclic (potential-deadlock freedom)",
	Run:    runLockorder,
	Finish: finishLockorder,
}

// lockEdge is one "acquired To while holding From" observation.
type lockEdge struct {
	From, To string
	Pos      token.Position
	Via      string // "" for a nested Lock, callee name for a summary edge
}

// lockFact is one package's contribution to the whole-program graph.
type lockFact struct {
	Nodes     map[string]string   // lock id -> display name
	Edges     []lockEdge          //
	Summaries map[string][]string // func full name -> transitively acquired lock ids
}

// ---- per-package run ----

// lockEvent is one flow-relevant action inside a function.
type lockEvent struct {
	pos      token.Pos
	kind     int    // evLock, evUnlock, evCall
	id       string // lock id (evLock/evUnlock)
	display  string
	expr     string // receiver expression text (evLock/evUnlock)
	callee   string // func full name (evCall)
	deferred bool
}

const (
	evLock = iota
	evUnlock
	evCall
)

// funcUnit is one function or function literal to analyze.
type funcUnit struct {
	name   string // full name for summaries; "" for literals
	body   *ast.BlockStmt
	events map[ast.Stmt][]lockEvent
	cfg    *anz.CFG
	// direct per-function data for the summary fixpoint
	acquires map[string]bool
	calls    map[string]bool
}

func runLockorder(pass *anz.Pass) error {
	fact := lockFact{
		Nodes:     map[string]string{},
		Summaries: map[string][]string{},
	}

	// Imported summaries from dependency packages.
	imported := map[string][]string{}
	for _, f := range pass.ImportedFacts() {
		lf, ok := f.Value.(lockFact)
		if !ok {
			continue
		}
		for name, ids := range lf.Summaries {
			imported[name] = ids
		}
	}

	collectAnnotatedNodes(pass, fact.Nodes)

	var units []*funcUnit
	for _, file := range pass.Files {
		anz.InspectStack(file, func(n ast.Node, stack []ast.Node) bool {
			var name string
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body == nil {
					return true
				}
				if obj, ok := pass.Info.Defs[fn.Name].(*types.Func); ok {
					name = obj.FullName()
				}
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			u := buildUnit(pass, body, name, fact.Nodes)
			units = append(units, u)
			return true // descend: nested literals become their own units
		})
	}

	// Summary fixpoint across this package's functions (imported
	// summaries are already transitive).
	summaries := map[string]map[string]bool{}
	for _, u := range units {
		if u.name == "" {
			continue
		}
		s := map[string]bool{}
		for id := range u.acquires {
			s[id] = true
		}
		summaries[u.name] = s
	}
	for changed := true; changed; {
		changed = false
		for _, u := range units {
			if u.name == "" {
				continue
			}
			s := summaries[u.name]
			for callee := range u.calls {
				var ids []string
				if cs, ok := summaries[callee]; ok {
					for id := range cs {
						ids = append(ids, id)
					}
				} else if im, ok := imported[callee]; ok {
					ids = im
				}
				for _, id := range ids {
					if !s[id] {
						s[id] = true
						changed = true
					}
				}
			}
		}
	}
	lookupSummary := func(callee string) []string {
		if s, ok := summaries[callee]; ok {
			ids := make([]string, 0, len(s))
			for id := range s {
				ids = append(ids, id)
			}
			sort.Strings(ids)
			return ids
		}
		return imported[callee]
	}

	// Held-set dataflow per unit, emitting edges.
	seen := map[[2]string]bool{}
	for _, u := range units {
		edges := flowEdges(pass, u, lookupSummary)
		for _, e := range edges {
			k := [2]string{e.From, e.To}
			if seen[k] {
				continue
			}
			seen[k] = true
			fact.Edges = append(fact.Edges, e)
		}
	}

	for name, s := range summaries {
		ids := make([]string, 0, len(s))
		for id := range s {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		fact.Summaries[name] = ids
	}
	pass.ExportFact(fact)
	return nil
}

// buildUnit collects the lock/unlock/call events of one function body,
// skipping nested function literals (they are separate units).
func buildUnit(pass *anz.Pass, body *ast.BlockStmt, name string, nodes map[string]string) *funcUnit {
	u := &funcUnit{
		name:     name,
		body:     body,
		events:   map[ast.Stmt][]lockEvent{},
		cfg:      anz.BuildCFG(body),
		acquires: map[string]bool{},
		calls:    map[string]bool{},
	}
	anz.InspectStack(body, func(n ast.Node, stack []ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // separate unit
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		ev, ok := classifyCall(pass, call)
		if !ok {
			return true
		}
		if underGo(stack) {
			// `go f()` runs on its own stack: locks held here impose
			// no ordering on f's acquisitions.
			return true
		}
		ev.deferred = underDefer(stack)
		if ev.kind == evLock {
			u.acquires[ev.id] = true
			nodes[ev.id] = ev.display
		}
		if ev.kind == evCall {
			u.calls[ev.callee] = true
		}
		stmt, ok := u.cfg.StmtFor(n, stack)
		if !ok {
			return true
		}
		u.events[stmt] = append(u.events[stmt], ev)
		return true
	})
	for _, evs := range u.events {
		sort.Slice(evs, func(i, j int) bool { return evs[i].pos < evs[j].pos })
	}
	return u
}

// underGo reports whether the call sits directly under a `go`
// statement within the current function unit.
func underGo(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		if _, ok := stack[i].(*ast.GoStmt); ok {
			return true
		}
		if _, _, ok := funcParts(stack[i]); ok {
			return false
		}
	}
	return false
}

// underDefer reports whether the innermost statement ancestor chain
// passes through a DeferStmt (the event runs at function exit, not
// here).
func underDefer(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		if _, ok := stack[i].(*ast.DeferStmt); ok {
			return true
		}
		if _, _, ok := funcParts(stack[i]); ok {
			return false
		}
	}
	return false
}

// classifyCall resolves one call expression into a lock event.
func classifyCall(pass *anz.Pass, call *ast.CallExpr) (lockEvent, bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if isSel {
		switch sel.Sel.Name {
		case "Lock", "RLock", "Unlock", "RUnlock":
			if isMutexMethod(pass, sel) {
				id, display, expr, ok := lockIdentity(pass, sel.X)
				if !ok {
					return lockEvent{}, false
				}
				kind := evLock
				if sel.Sel.Name == "Unlock" || sel.Sel.Name == "RUnlock" {
					kind = evUnlock
				}
				return lockEvent{pos: call.Pos(), kind: kind, id: id, display: display, expr: expr}, true
			}
		}
	}
	// A statically-resolved function or method call (not interface, not
	// a function value).
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return lockEvent{}, false
	}
	fn, ok := pass.Info.Uses[id].(*types.Func)
	if !ok {
		return lockEvent{}, false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if types.IsInterface(sig.Recv().Type()) {
			return lockEvent{}, false // dynamic dispatch: unresolvable
		}
	}
	return lockEvent{pos: call.Pos(), kind: evCall, callee: fn.FullName()}, true
}

// isMutexMethod reports whether sel names a Lock-family method on
// sync.Mutex or sync.RWMutex (including via an embedded mutex).
func isMutexMethod(pass *anz.Pass, sel *ast.SelectorExpr) bool {
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return isNamed(sig.Recv().Type(), "sync", "Mutex") || isNamed(sig.Recv().Type(), "sync", "RWMutex")
}

// lockIdentity names the lock a receiver expression denotes:
//
//	x.mu.Lock()       -> <pkg>.T.mu    (field of named struct type)
//	pkgMu.Lock()      -> <pkg>.pkgMu   (package-level var)
//	t.Lock()          -> <pkg>.T.<embedded mutex>
//	localMu.Lock()    -> none (instance identity is function-local)
func lockIdentity(pass *anz.Pass, recv ast.Expr) (id, display, expr string, ok bool) {
	recv = ast.Unparen(recv)
	switch r := recv.(type) {
	case *ast.SelectorExpr:
		// Field selection x.mu?
		if selection, ok := pass.Info.Selections[r]; ok && selection.Kind() == types.FieldVal {
			if owner := namedFrom(selection.Recv()); owner != nil && owner.Obj().Pkg() != nil {
				obj := owner.Obj()
				id := obj.Pkg().Path() + "." + obj.Name() + "." + r.Sel.Name
				display := obj.Pkg().Name() + "." + obj.Name() + "." + r.Sel.Name
				return id, display, types.ExprString(recv), true
			}
			return "", "", "", false
		}
		// Qualified package-level var pkg.Mu?
		if v, ok := pass.Info.Uses[r.Sel].(*types.Var); ok && isPkgLevel(v) {
			return varIdentity(v, recv)
		}
		return "", "", "", false
	case *ast.Ident:
		v, okv := pass.Info.Uses[r].(*types.Var)
		if !okv {
			return "", "", "", false
		}
		if isPkgLevel(v) {
			return varIdentity(v, recv)
		}
		// Embedded mutex: t.Lock() where t's type embeds sync.Mutex.
		if owner := namedFrom(v.Type()); owner != nil && owner.Obj().Pkg() != nil {
			if f, fok := embeddedMutexField(owner); fok {
				obj := owner.Obj()
				id := obj.Pkg().Path() + "." + obj.Name() + "." + f
				display := obj.Pkg().Name() + "." + obj.Name() + "." + f
				return id, display, types.ExprString(recv), true
			}
		}
		return "", "", "", false
	}
	return "", "", "", false
}

func isPkgLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

func varIdentity(v *types.Var, recv ast.Expr) (string, string, string, bool) {
	id := v.Pkg().Path() + "." + v.Name()
	display := v.Pkg().Name() + "." + v.Name()
	return id, display, types.ExprString(recv), true
}

// embeddedMutexField returns the name of owner's embedded sync.Mutex /
// sync.RWMutex field, if any.
func embeddedMutexField(owner *types.Named) (string, bool) {
	stru, ok := owner.Underlying().(*types.Struct)
	if !ok {
		return "", false
	}
	for i := 0; i < stru.NumFields(); i++ {
		f := stru.Field(i)
		if f.Embedded() && isMutex(f.Type()) {
			return f.Name(), true
		}
	}
	return "", false
}

// heldLock is one entry of the dataflow held-set.
type heldLock struct {
	pos  token.Pos
	expr string
}

// flowEdges runs the forward may-held dataflow over one unit's CFG and
// returns the acquisition edges it observes.
func flowEdges(pass *anz.Pass, u *funcUnit, lookupSummary func(string) []string) []lockEdge {
	var edges []lockEdge
	emit := func(from, to string, at token.Pos, via string) {
		edges = append(edges, lockEdge{
			From: from, To: to,
			Pos: pass.Fset.Position(at),
			Via: via,
		})
	}

	// transfer applies one statement's events to held, emitting edges.
	transfer := func(stmt ast.Stmt, held map[string]heldLock) {
		for _, ev := range u.events[stmt] {
			switch ev.kind {
			case evLock:
				if ev.deferred {
					continue
				}
				for fromID, h := range held {
					if fromID == ev.id {
						// Same identity: only a textual re-lock of the same
						// expression is a sure self-deadlock.
						if h.expr == ev.expr {
							emit(fromID, ev.id, ev.pos, "")
						}
						continue
					}
					emit(fromID, ev.id, ev.pos, "")
				}
				if _, ok := held[ev.id]; !ok {
					held[ev.id] = heldLock{pos: ev.pos, expr: ev.expr}
				}
			case evUnlock:
				if ev.deferred {
					continue // defer mu.Unlock(): held to function exit
				}
				delete(held, ev.id)
			case evCall:
				if ev.deferred || len(held) == 0 {
					continue
				}
				for _, to := range lookupSummary(ev.callee) {
					for fromID := range held {
						emit(fromID, to, ev.pos, ev.callee)
					}
				}
			}
		}
	}

	// Worklist fixpoint: in[b] = union of out[preds].
	n := len(u.cfg.Blocks)
	index := map[*anz.Block]int{}
	for i, b := range u.cfg.Blocks {
		index[b] = i
	}
	in := make([]map[string]heldLock, n)
	out := make([]map[string]heldLock, n)
	for i := range in {
		in[i] = map[string]heldLock{}
		out[i] = map[string]heldLock{}
	}
	cloneInto := func(dst, src map[string]heldLock) bool {
		changed := false
		for k, v := range src {
			if _, ok := dst[k]; !ok {
				dst[k] = v
				changed = true
			}
		}
		return changed
	}
	// Iterate to fixpoint without emitting, then one final emitting pass.
	for changed := true; changed; {
		changed = false
		for i, b := range u.cfg.Blocks {
			held := map[string]heldLock{}
			cloneInto(held, in[i])
			for _, s := range b.Stmts {
				quietTransfer(u, s, held)
			}
			if cloneInto(out[i], held) {
				changed = true
			}
			for _, succ := range b.Succs {
				if cloneInto(in[index[succ]], out[i]) {
					changed = true
				}
			}
		}
	}
	emitted := map[string]bool{}
	for i, b := range u.cfg.Blocks {
		held := map[string]heldLock{}
		cloneInto(held, in[i])
		for _, s := range b.Stmts {
			transfer(s, held)
		}
	}
	// Dedupe, deterministic order.
	var uniq []lockEdge
	sort.Slice(edges, func(i, j int) bool {
		a, b := edges[i], edges[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Pos.Offset < b.Pos.Offset
	})
	for _, e := range edges {
		k := e.From + "\x00" + e.To
		if emitted[k] {
			continue
		}
		emitted[k] = true
		uniq = append(uniq, e)
	}
	return uniq
}

// quietTransfer is the dataflow transfer without edge emission, used
// while iterating to fixpoint.
func quietTransfer(u *funcUnit, stmt ast.Stmt, held map[string]heldLock) {
	for _, ev := range u.events[stmt] {
		switch ev.kind {
		case evLock:
			if ev.deferred {
				continue
			}
			if _, ok := held[ev.id]; !ok {
				held[ev.id] = heldLock{pos: ev.pos, expr: ev.expr}
			}
		case evUnlock:
			if !ev.deferred {
				delete(held, ev.id)
			}
		}
	}
}

// collectAnnotatedNodes seeds the node set from `// guarded by` field
// annotations, so annotated locks appear in the graph even when never
// nested.
func collectAnnotatedNodes(pass *anz.Pass, nodes map[string]string) {
	for _, file := range pass.Files {
		anz.InspectStack(file, func(n ast.Node, stack []ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			// The enclosing type name, for sibling guards.
			ownerName := ""
			for i := len(stack) - 1; i >= 0; i-- {
				if ts, ok := stack[i].(*ast.TypeSpec); ok {
					ownerName = ts.Name.Name
					break
				}
			}
			for _, f := range st.Fields.List {
				m := matchGuardComment(f)
				if m == nil {
					continue
				}
				name, sub := m[1], m[2]
				if sub == "" {
					if ownerName != "" {
						id := pass.Pkg.Path() + "." + ownerName + "." + name
						nodes[id] = pass.Pkg.Name() + "." + ownerName + "." + name
					}
				} else {
					id := pass.Pkg.Path() + "." + name + "." + sub
					nodes[id] = pass.Pkg.Name() + "." + name + "." + sub
				}
			}
			return true
		})
	}
}

// ---- whole-program finish ----

// lockGraph is the merged graph, rebuilt by Finish and by the driver's
// DOT dump.
type lockGraph struct {
	nodes map[string]string
	edges []lockEdge
}

// mergeLockFacts unions every package's contribution.
func mergeLockFacts(fs *anz.FactStore) *lockGraph {
	g := &lockGraph{nodes: map[string]string{}}
	seen := map[[2]string]bool{}
	for _, f := range fs.Facts("lockorder") {
		lf, ok := f.Value.(lockFact)
		if !ok {
			continue
		}
		for id, d := range lf.Nodes {
			g.nodes[id] = d
		}
		for _, e := range lf.Edges {
			k := [2]string{e.From, e.To}
			if seen[k] {
				continue
			}
			seen[k] = true
			g.edges = append(g.edges, e)
		}
	}
	sort.Slice(g.edges, func(i, j int) bool {
		a, b := g.edges[i], g.edges[j]
		if a.From != b.From {
			return a.From < b.From
		}
		return a.To < b.To
	})
	return g
}

func finishLockorder(fs *anz.FactStore, report anz.ReportFunc) error {
	g := mergeLockFacts(fs)
	adj := map[string][]lockEdge{}
	for _, e := range g.edges {
		adj[e.From] = append(adj[e.From], e)
	}
	for _, cyc := range findCycles(adj) {
		path := make([]string, 0, len(cyc)+1)
		for _, e := range cyc {
			path = append(path, g.display(e.From))
		}
		path = append(path, g.display(cyc[0].From))
		desc := strings.Join(path, " -> ")
		for _, e := range cyc {
			via := ""
			if e.Via != "" {
				via = fmt.Sprintf(" via call to %s", e.Via)
			}
			report(e.Pos, "lock-order cycle %s: %s is acquired here%s while %s is held",
				desc, g.display(e.To), via, g.display(e.From))
		}
	}
	return nil
}

func (g *lockGraph) display(id string) string {
	if d, ok := g.nodes[id]; ok {
		return d
	}
	return id
}

// findCycles returns one representative elementary cycle per strongly
// connected component (plus self-loops), deterministically.
func findCycles(adj map[string][]lockEdge) [][]lockEdge {
	nodes := make([]string, 0, len(adj))
	for n := range adj {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)

	var cycles [][]lockEdge
	// Self-loops first.
	for _, n := range nodes {
		for _, e := range adj[n] {
			if e.To == n {
				cycles = append(cycles, []lockEdge{e})
			}
		}
	}
	// DFS from each node looking for a path back to it (elementary
	// cycles of length >= 2). Dedupe by the cycle's canonical node set.
	seen := map[string]bool{}
	for _, start := range nodes {
		var path []lockEdge
		onPath := map[string]bool{start: true}
		var dfs func(cur string) bool
		dfs = func(cur string) bool {
			for _, e := range adj[cur] {
				if e.To == start && len(path) >= 1 {
					cyc := append(append([]lockEdge(nil), path...), e)
					key := canonicalCycle(cyc)
					if !seen[key] {
						seen[key] = true
						cycles = append(cycles, cyc)
					}
					return true
				}
				if onPath[e.To] {
					continue
				}
				onPath[e.To] = true
				path = append(path, e)
				found := dfs(e.To)
				path = path[:len(path)-1]
				delete(onPath, e.To)
				if found {
					return true
				}
			}
			return false
		}
		for _, e := range adj[start] {
			if e.To == start {
				continue // self-loop already reported
			}
			if onPath[e.To] {
				continue
			}
			onPath[e.To] = true
			path = append(path, e)
			dfs(e.To)
			path = path[:len(path)-1]
			delete(onPath, e.To)
		}
	}
	return cycles
}

// canonicalCycle keys a cycle by its sorted participant set, so the
// same ring found from different start nodes is reported once.
func canonicalCycle(cyc []lockEdge) string {
	ids := make([]string, 0, len(cyc))
	for _, e := range cyc {
		ids = append(ids, e.From)
	}
	sort.Strings(ids)
	return strings.Join(ids, "\x00")
}

// LockGraphDOT renders the merged lock-acquisition graph as Graphviz
// DOT, the `dwlint -lockgraph` CI artifact. Edges in a cycle are drawn
// red and bold.
func LockGraphDOT(fs *anz.FactStore) []byte {
	g := mergeLockFacts(fs)
	adj := map[string][]lockEdge{}
	for _, e := range g.edges {
		adj[e.From] = append(adj[e.From], e)
	}
	inCycle := map[[2]string]bool{}
	for _, cyc := range findCycles(adj) {
		for _, e := range cyc {
			inCycle[[2]string{e.From, e.To}] = true
		}
	}

	var b strings.Builder
	b.WriteString("digraph lockorder {\n")
	b.WriteString("  rankdir=LR;\n  node [shape=box, fontname=\"monospace\"];\n")
	ids := make([]string, 0, len(g.nodes))
	for id := range g.nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		fmt.Fprintf(&b, "  %q;\n", g.display(id))
	}
	for _, e := range g.edges {
		attrs := fmt.Sprintf("label=%q", fmt.Sprintf("%s:%d", trimPath(e.Pos.Filename), e.Pos.Line))
		if inCycle[[2]string{e.From, e.To}] {
			attrs += ", color=red, penwidth=2"
		}
		fmt.Fprintf(&b, "  %q -> %q [%s];\n", g.display(e.From), g.display(e.To), attrs)
	}
	b.WriteString("}\n")
	return []byte(b.String())
}

// trimPath shortens an absolute fixture/module path to its last three
// elements for edge labels.
func trimPath(p string) string {
	parts := strings.Split(p, "/")
	if len(parts) <= 3 {
		return p
	}
	return strings.Join(parts[len(parts)-3:], "/")
}
