package checkers

import (
	"testing"

	"dwmaxerr/tools/dwlint/internal/anz/anztest"
)

func TestLockorder(t *testing.T)      { anztest.Run(t, Lockorder, "lockorder") }
func TestLockorderClean(t *testing.T) { anztest.Run(t, Lockorder, "lockorderclean") }
