package checkers

import (
	"go/ast"
	"go/types"

	"dwmaxerr/tools/dwlint/internal/anz"
)

// Goroleak checks that long-lived goroutines spawned by closable types
// are actually stoppable. Scope: every `go` statement where either the
// spawning function is a method on a type with a Close/Stop/Shutdown
// method, or the spawned call is (the ingest constructor's
// `go g.publisher()` pattern). If the spawned body contains an
// unconditional loop (`for { ... }`), it must receive from a stop
// signal somewhere:
//
//   - a channel field of the owner type (`case <-rt.stop:`) — in which
//     case something in the package must also close or send on that
//     field, else Close never actually stops the loop;
//   - a ctx.Done() receive;
//   - any other channel-typed identifier (a stop parameter, or a local
//     the spawner closes — `defer close(hbStop)`).
//
// Loops that block in calls (`ln.Accept()`, `pc.Recv()`) with no
// receive at all are exactly the leaks this catches: nothing Close does
// can unblock them except side effects the analyzer cannot see, so a
// justified //dwlint:ignore is the honest way to keep one.
var Goroleak = &anz.Analyzer{
	Name: "goroleak",
	Doc:  "goroutines of closable types must select on a done/ctx signal their Close/Stop/Shutdown triggers",
	Run:  runGoroleak,
}

var closerNames = map[string]bool{"Close": true, "Stop": true, "Shutdown": true}

func runGoroleak(pass *anz.Pass) error {
	decls := packageFuncDecls(pass)

	for _, file := range pass.Files {
		anz.InspectStack(file, func(n ast.Node, stack []ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkGoStmt(pass, gs, stack, decls)
			return true
		})
	}
	return nil
}

// packageFuncDecls maps each function object to its declaration, so a
// spawned same-package method call can be analyzed by body.
func packageFuncDecls(pass *anz.Pass) map[*types.Func]*ast.FuncDecl {
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}
	return decls
}

func checkGoStmt(pass *anz.Pass, gs *ast.GoStmt, stack []ast.Node, decls map[*types.Func]*ast.FuncDecl) {
	// Resolve the spawned body.
	var body *ast.BlockStmt
	switch fun := ast.Unparen(gs.Call.Fun).(type) {
	case *ast.FuncLit:
		body = fun.Body
	default:
		if fn := staticCallee(pass, gs.Call); fn != nil {
			if fd, ok := decls[fn]; ok {
				body = fd.Body
			}
		}
	}
	if body == nil {
		return // dynamic target: out of scope
	}

	// Resolve the owner: the closable type this goroutine belongs to.
	owner := ownerType(pass, gs, stack)
	if owner == nil || !hasCloser(owner) {
		return
	}

	if !hasUnconditionalLoop(body) {
		return // short-lived helper: Close need not interrupt it
	}

	sig := findStopSignal(pass, body, owner)
	switch sig.kind {
	case sigNone:
		pass.Reportf(gs.Pos(), "goroutine of closable type %s loops forever without receiving from a done/ctx stop signal",
			owner.Obj().Name())
	case sigOwnerField:
		if !fieldEverClosed(pass, owner, sig.field) {
			pass.Reportf(gs.Pos(), "goroutine of %s waits on %s.%s, but nothing in the package closes or sends to it",
				owner.Obj().Name(), owner.Obj().Name(), sig.field)
		}
	}
}

// staticCallee resolves a call to a concrete *types.Func, or nil for
// function values and interface methods.
func staticCallee(pass *anz.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, ok := pass.Info.Uses[id].(*types.Func)
	if !ok {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if types.IsInterface(sig.Recv().Type()) {
			return nil
		}
	}
	return fn
}

// ownerType picks the closable type a go statement serves: the
// receiver of the enclosing method, or the receiver of the spawned
// method call (the constructor pattern `go g.publisher()`).
func ownerType(pass *anz.Pass, gs *ast.GoStmt, stack []ast.Node) *types.Named {
	for i := len(stack) - 1; i >= 0; i-- {
		fd, ok := stack[i].(*ast.FuncDecl)
		if !ok || fd.Recv == nil || len(fd.Recv.List) == 0 {
			continue
		}
		if n := namedFrom(pass.Info.TypeOf(fd.Recv.List[0].Type)); n != nil {
			return n
		}
	}
	if fn := staticCallee(pass, gs.Call); fn != nil {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return namedFrom(sig.Recv().Type())
		}
	}
	return nil
}

// hasCloser reports whether the type's method set (value or pointer
// receiver) has Close, Stop, or Shutdown.
func hasCloser(n *types.Named) bool {
	ms := types.NewMethodSet(types.NewPointer(n))
	for i := 0; i < ms.Len(); i++ {
		if closerNames[ms.At(i).Obj().Name()] {
			return true
		}
	}
	return false
}

// hasUnconditionalLoop reports whether body contains `for { ... }`
// (outside nested function literals — those are separate goroutine
// bodies or callbacks with their own lifecycle).
func hasUnconditionalLoop(body *ast.BlockStmt) bool {
	found := false
	anz.InspectStack(body, func(n ast.Node, stack []ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if f, ok := n.(*ast.ForStmt); ok && f.Cond == nil && f.Init == nil && f.Post == nil {
			found = true
		}
		return !found
	})
	return found
}

const (
	sigNone = iota
	sigOwnerField
	sigOther // ctx.Done(), stop parameter, spawner-closed local
)

type stopSignal struct {
	kind  int
	field string
}

// findStopSignal scans the spawned body for a channel receive that can
// end the loop. Owner-field receives are returned for closer
// verification; anything else is accepted as-is.
func findStopSignal(pass *anz.Pass, body *ast.BlockStmt, owner *types.Named) stopSignal {
	sig := stopSignal{kind: sigNone}
	anz.InspectStack(body, func(n ast.Node, stack []ast.Node) bool {
		var ch ast.Expr
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op.String() != "<-" {
				return true
			}
			ch = n.X
		case *ast.RangeStmt:
			if _, ok := pass.Info.TypeOf(n.X).Underlying().(*types.Chan); !ok {
				return true
			}
			ch = n.X
		default:
			return true
		}
		switch c := ast.Unparen(ch).(type) {
		case *ast.SelectorExpr:
			if selection, ok := pass.Info.Selections[c]; ok && selection.Kind() == types.FieldVal {
				if recv := namedFrom(selection.Recv()); recv == owner {
					if sig.kind != sigOther {
						sig = stopSignal{kind: sigOwnerField, field: c.Sel.Name}
					}
					return true
				}
			}
			// A field of some other struct still counts as a signal.
			sig = stopSignal{kind: sigOther}
		case *ast.CallExpr:
			// ctx.Done() and friends: any channel-returning call.
			sig = stopSignal{kind: sigOther}
		case *ast.Ident:
			// A stop parameter or a captured local (`hbStop`).
			sig = stopSignal{kind: sigOther}
		}
		return true
	})
	return sig
}

// fieldEverClosed reports whether anything in the package closes or
// sends on the owner's channel field — the minimum for a Close/Stop
// path to actually release the waiting goroutine. Nested function
// literals are searched too (Router.Close signals inside a
// sync.Once.Do closure).
func fieldEverClosed(pass *anz.Pass, owner *types.Named, field string) bool {
	found := false
	match := func(e ast.Expr) bool {
		sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != field {
			return false
		}
		selection, ok := pass.Info.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return false
		}
		return namedFrom(selection.Recv()) == owner
	}
	for _, file := range pass.Files {
		anz.InspectStack(file, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 && match(n.Args[0]) {
					found = true
				}
			case *ast.SendStmt:
				if match(n.Chan) {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
