package checkers

import (
	"go/ast"
	"go/token"
	"go/types"

	"dwmaxerr/tools/dwlint/internal/anz"
)

// Atomicpub enforces the publish-after-swap contract of the ingest
// snapshot path: once a value has been handed to atomic.Pointer.Store /
// Swap (or atomic.Value.Store), readers may observe it at any moment,
// so the publisher must never write through it again. The check is
// flow-sensitive: for each `p.Store(v)` where v is a local identifier,
// any write through v (`v.f = ...`, `v[i] = ...`, `*v = ...`, `v.f++`)
// on a CFG path after the publish is a finding — including writes
// inside function literals (goroutines, deferred closures) whose
// spawning statement is reachable from the publish.
//
// A plain rebind (`v = fresh()`) kills the alias: writes after a rebind
// that itself follows the publish are not reported. Values published as
// inline expressions (`p.Store(build(...))`) never bind a name, so they
// are trivially safe.
var Atomicpub = &anz.Analyzer{
	Name: "atomicpub",
	Doc:  "values published via atomic Store/Swap must not be written through afterwards",
	Run:  runAtomicpub,
}

func runAtomicpub(pass *anz.Pass) error {
	for _, file := range pass.Files {
		anz.InspectStack(file, func(n ast.Node, stack []ast.Node) bool {
			if _, body, ok := funcParts(n); ok && body != nil {
				checkAtomicUnit(pass, n, body)
			}
			return true
		})
	}
	return nil
}

// atomicWrite is one write-through observation inside a unit.
type atomicWrite struct {
	stmt ast.Stmt // placed statement in the unit's CFG
	pos  token.Pos
	expr string // the written expression, for the message
}

// checkAtomicUnit analyzes one function (or literal) body. Stores are
// collected from the unit proper (nested literals publish on their own
// behalf); writes are collected from the whole subtree, mapped to the
// statement that places them in this unit's CFG.
func checkAtomicUnit(pass *anz.Pass, fnNode ast.Node, body *ast.BlockStmt) {
	type store struct {
		stmt   ast.Stmt
		v      *types.Var
		method string
	}
	var stores []store
	writes := map[*types.Var][]atomicWrite{}
	rebinds := map[*types.Var][]ast.Stmt{}

	cfg := anz.BuildCFG(body)
	anz.InspectStack(body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if nestedInLiteral(stack) {
				return true
			}
			v, method, ok := atomicPublish(pass, n)
			if !ok {
				return true
			}
			if stmt, ok := cfg.StmtFor(n, stack); ok {
				stores = append(stores, store{stmt: stmt, v: v, method: method})
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					// Plain rebind: kills the alias, not a write-through.
					if v, ok := pass.Info.Uses[id].(*types.Var); ok && !nestedInLiteral(stack) {
						if stmt, ok := cfg.StmtFor(n, stack); ok {
							rebinds[v] = append(rebinds[v], stmt)
						}
					}
					continue
				}
				if v, root := writeRoot(pass, lhs); v != nil {
					if stmt, ok := cfg.StmtFor(n, stack); ok {
						writes[v] = append(writes[v], atomicWrite{stmt: stmt, pos: lhs.Pos(), expr: root})
					}
				}
			}
		case *ast.IncDecStmt:
			if v, root := writeRoot(pass, n.X); v != nil {
				if stmt, ok := cfg.StmtFor(n, stack); ok {
					writes[v] = append(writes[v], atomicWrite{stmt: stmt, pos: n.X.Pos(), expr: root})
				}
			}
		}
		return true
	})

	for _, s := range stores {
		for _, w := range writes[s.v] {
			if w.stmt != s.stmt && !cfg.Reaches(s.stmt, w.stmt) {
				continue
			}
			if rebindBetween(cfg, rebinds[s.v], s.stmt, w.stmt) {
				continue
			}
			pass.Reportf(w.pos, "write through %s after %s was published via atomic %s; published values are immutable",
				w.expr, s.v.Name(), s.method)
		}
	}
}

// nestedInLiteral reports whether the node sits inside a function
// literal nested in the current unit (the stack bottoms out at the
// unit's own func node, which InspectStack does not include when
// walking the body).
func nestedInLiteral(stack []ast.Node) bool {
	for _, n := range stack {
		if _, ok := n.(*ast.FuncLit); ok {
			return true
		}
	}
	return false
}

// atomicPublish matches `p.Store(v)` / `p.Swap(v)` on sync/atomic
// Pointer[T] or Value where v is a plain identifier, returning the
// published variable.
func atomicPublish(pass *anz.Pass, call *ast.CallExpr) (*types.Var, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) != 1 {
		return nil, "", false
	}
	if sel.Sel.Name != "Store" && sel.Sel.Name != "Swap" {
		return nil, "", false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return nil, "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil, "", false
	}
	rt := sig.Recv().Type()
	if !isNamed(rt, "sync/atomic", "Pointer") && !isNamed(rt, "sync/atomic", "Value") {
		return nil, "", false
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return nil, "", false
	}
	v, ok := pass.Info.Uses[id].(*types.Var)
	if !ok {
		return nil, "", false
	}
	return v, sel.Sel.Name, true
}

// writeRoot unwraps an assignable expression (x.f, x[i], *x, and
// combinations) to its root identifier's variable. A bare identifier is
// not a write-through (that is a rebind) and returns nil.
func writeRoot(pass *anz.Pass, e ast.Expr) (*types.Var, string) {
	root := ast.Unparen(e)
	if _, ok := root.(*ast.Ident); ok {
		return nil, ""
	}
	display := types.ExprString(e)
	for {
		switch x := root.(type) {
		case *ast.SelectorExpr:
			root = ast.Unparen(x.X)
		case *ast.IndexExpr:
			root = ast.Unparen(x.X)
		case *ast.StarExpr:
			root = ast.Unparen(x.X)
		case *ast.Ident:
			if v, ok := pass.Info.Uses[x].(*types.Var); ok {
				return v, display
			}
			return nil, ""
		default:
			return nil, ""
		}
	}
}

// rebindBetween reports whether any rebind of the published variable
// lies on a path from the store to the write (may-analysis: a possible
// rebind suppresses the finding to keep the check low-noise).
func rebindBetween(cfg *anz.CFG, rebinds []ast.Stmt, store, write ast.Stmt) bool {
	for _, r := range rebinds {
		if r == write {
			continue
		}
		afterStore := r == store || cfg.Reaches(store, r)
		if afterStore && (r == write || cfg.Reaches(r, write)) {
			return true
		}
	}
	return false
}
