package checkers

import (
	"testing"

	"dwmaxerr/tools/dwlint/internal/anz/anztest"
)

func TestEmitretain(t *testing.T) { anztest.Run(t, Emitretain, "emitretain") }
