package checkers

import (
	"go/ast"

	"dwmaxerr/tools/dwlint/internal/anz"
)

// Wireappend pins the PR 2 shuffle fast path: inside a loop in a task
// function (anything that receives an mr.Emit — map, reduce, combine),
// key/value payloads must be built with the mr.Append* codec helpers
// into a reused scratch buffer, never with per-record reflection codecs
// (gob, binary.Write) or the allocating mr.Encode* variants. One gob
// encode per record re-introduces the 33x allocation regression the
// arena/append rewrite removed; gob stays legal for cold paths — job
// params, per-split payloads, the per-connection hello.
var Wireappend = &anz.Analyzer{
	Name: "wireappend",
	Doc:  "task hot loops must use mr.Append* codec helpers, not per-record gob/binary.Write/mr.Encode*",
	Run:  runWireappend,
}

// gobFuncs are the reflection-based codecs forbidden in task hot loops.
var gobFuncs = []struct{ pkg, name string }{
	{mrPath, "GobEncode"},
	{mrPath, "GobDecode"},
	{mrPath, "MustGobEncode"},
	{"encoding/gob", "NewEncoder"},
	{"encoding/gob", "NewDecoder"},
	{"encoding/binary", "Write"},
	{"encoding/binary", "Read"},
}

// allocEncodeFuncs allocate an 8-byte slice per call; in a hot loop the
// Append* form with a reused buffer is free.
var allocEncodeFuncs = []string{"EncodeUint64", "EncodeInt64", "EncodeFloat64", "EncodeUvarint", "EncodeOrderedUvarint"}

func runWireappend(pass *anz.Pass) error {
	for _, file := range pass.Files {
		anz.InspectStack(file, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !inTaskHotLoop(pass, stack) {
				return true
			}
			for _, f := range gobFuncs {
				if pkgFunc(pass, call, f.pkg, f.name) {
					pass.Reportf(call.Pos(), "per-record %s in a task hot loop; encode with the mr.Append* codec helpers into a reused buffer (shuffle fast-path contract, mr/codec.go)", f.name)
					return true
				}
			}
			for _, name := range allocEncodeFuncs {
				if pkgFunc(pass, call, mrPath, name) {
					pass.Reportf(call.Pos(), "mr.%s allocates per record; in a task hot loop use mr.Append%s with a reused scratch buffer", name, name[len("Encode"):])
					return true
				}
			}
			return true
		})
	}
	return nil
}

// inTaskHotLoop reports whether the ancestor stack places a node inside
// a for/range body that is itself inside a task function — a function
// with an mr.Emit-typed parameter. Cold per-job and driver-side code
// (no Emit in scope) is deliberately out of scope, as are helper
// closures without an Emit parameter of their own (the innermost
// function decides).
func inTaskHotLoop(pass *anz.Pass, stack []ast.Node) bool {
	taskDepth := -1
	for i := len(stack) - 1; i >= 0; i-- {
		ft, _, ok := funcParts(stack[i])
		if !ok {
			continue
		}
		if hasEmitParam(pass, ft) {
			taskDepth = i
		}
		break
	}
	if taskDepth < 0 {
		return false
	}
	for i := taskDepth + 1; i < len(stack); i++ {
		switch stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		}
	}
	return false
}

// hasEmitParam reports whether the function type declares a parameter of
// the named type mr.Emit.
func hasEmitParam(pass *anz.Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, f := range ft.Params.List {
		if tv, ok := pass.Info.Types[f.Type]; ok && isNamed(tv.Type, mrPath, "Emit") {
			return true
		}
	}
	return false
}
