// Package anz is a deliberately small reimplementation of the
// golang.org/x/tools/go/analysis vocabulary (Analyzer, Pass, diagnostics,
// an analysistest-style fixture runner) on top of the standard library
// only. The repo's policy is that the main module stays dependency-free
// and builds offline; x/tools is not vendored, so dwlint carries the ~300
// lines of driver it actually needs instead of the full framework. The
// API shape mirrors go/analysis closely enough that porting an analyzer
// to the real framework is mechanical.
package anz

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer describes one static check. It mirrors analysis.Analyzer,
// plus a Finish hook for whole-program checks assembled from
// per-package facts.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //dwlint:ignore directives.
	Name string
	// Doc is a one-paragraph description of the contract enforced.
	Doc string
	// Run executes the check against one package.
	Run func(*Pass) error
	// Finish, when non-nil, runs once after every package has been
	// analyzed, with the facts all Run calls exported. Diagnostics go
	// through report, which applies suppression directives exactly like
	// Pass.Reportf.
	Finish func(fs *FactStore, report ReportFunc) error
}

// ReportFunc reports one whole-program diagnostic at a resolved
// position.
type ReportFunc func(pos token.Position, format string, args ...interface{})

// Pass carries one (analyzer, package) execution. It mirrors
// analysis.Pass.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	// TestFiles are the package's test files, parsed but NOT
	// type-checked (Info and Pkg know nothing about them). Analyzers
	// that inspect them must stay syntactic.
	TestFiles []*ast.File
	Pkg       *types.Package
	Info      *types.Info

	diags   *[]Diagnostic
	ignores ignoreIndex
	facts   *FactStore
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Pos      token.Position
	Message  string
	Analyzer string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a diagnostic at pos unless a //dwlint:ignore directive
// on the same line or the line above suppresses this analyzer there.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	position := p.Fset.Position(pos)
	if p.ignores.suppressed(position, p.Analyzer.Name) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// ---- ignore directives ----

// ignoreRe matches suppression directives:
//
//	//dwlint:ignore <name>[,<name>...] -- <reason>
//
// The reason is mandatory: a suppression without a recorded justification
// is itself reported. "all" suppresses every analyzer.
var ignoreRe = regexp.MustCompile(`^//dwlint:ignore\s+([A-Za-z0-9_,]+)\s*(?:--\s*(.*))?$`)

type ignoreDirective struct {
	names  map[string]bool
	reason string
	pos    token.Position
}

// ignoreIndex maps filename -> line -> directive.
type ignoreIndex map[string]map[int]ignoreDirective

// suppressed reports whether a diagnostic for analyzer name at pos is
// covered by a directive on its line or the line above.
func (ix ignoreIndex) suppressed(pos token.Position, name string) bool {
	lines := ix[pos.Filename]
	for _, ln := range []int{pos.Line, pos.Line - 1} {
		if d, ok := lines[ln]; ok && (d.names[name] || d.names["all"]) && d.reason != "" {
			return true
		}
	}
	return false
}

// buildIgnoreIndex scans every comment in the package (test files
// included — some checks report into them) for directives. Directives
// with no reason are reported as findings so suppressions stay honest;
// justified ones are inventoried in the fact store for the suppression
// budget.
func buildIgnoreIndex(fset *token.FileSet, files []*ast.File, diags *[]Diagnostic, fs *FactStore) ignoreIndex {
	ix := ignoreIndex{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				names := map[string]bool{}
				var nameList []string
				for _, n := range strings.Split(m[1], ",") {
					n = strings.TrimSpace(n)
					names[n] = true
					nameList = append(nameList, n)
				}
				sort.Strings(nameList)
				reason := strings.TrimSpace(m[2])
				if reason == "" {
					*diags = append(*diags, Diagnostic{
						Pos:      pos,
						Message:  "dwlint:ignore directive needs a justification: //dwlint:ignore <name> -- <reason>",
						Analyzer: "dwlint",
					})
					continue
				}
				if ix[pos.Filename] == nil {
					ix[pos.Filename] = map[int]ignoreDirective{}
				}
				ix[pos.Filename][pos.Line] = ignoreDirective{names: names, reason: reason, pos: pos}
				fs.directives = append(fs.directives, Directive{Pos: pos, Names: nameList, Reason: reason})
			}
		}
	}
	return ix
}

// RunAnalyzers executes every analyzer over every package, runs each
// analyzer's Finish hook over the accumulated facts, and returns the
// combined findings sorted by position. fs may be nil when the caller
// has no use for the facts or the directive inventory afterwards.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer, fs *FactStore) ([]Diagnostic, error) {
	if fs == nil {
		fs = NewFactStore()
	}
	var diags []Diagnostic
	merged := ignoreIndex{}
	for _, pkg := range pkgs {
		ignores := buildIgnoreIndex(pkg.Fset, append(append([]*ast.File(nil), pkg.Files...), pkg.TestFiles...), &diags, fs)
		for file, lines := range ignores {
			merged[file] = lines
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				TestFiles: pkg.TestFiles,
				Pkg:       pkg.Types,
				Info:      pkg.Info,
				diags:     &diags,
				ignores:   ignores,
				facts:     fs,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	for _, a := range analyzers {
		if a.Finish == nil {
			continue
		}
		report := func(pos token.Position, format string, args ...interface{}) {
			if merged.suppressed(pos, a.Name) {
				return
			}
			diags = append(diags, Diagnostic{
				Pos:      pos,
				Message:  fmt.Sprintf(format, args...),
				Analyzer: a.Name,
			})
		}
		if err := a.Finish(fs, report); err != nil {
			return nil, fmt.Errorf("%s finish: %w", a.Name, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// InspectStack walks root in depth-first order calling fn with each node
// and the stack of its ancestors (outermost first, not including n).
// Returning false prunes the subtree. It stands in for
// x/tools/go/ast/inspector's WithStack.
func InspectStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		cont := fn(n, stack)
		if cont {
			stack = append(stack, n)
		}
		return cont
	})
}
