package anz

import (
	"go/token"
	"sort"
)

// FactStore aggregates what per-package analyzer runs learned, so an
// analyzer's Finish hook can do whole-program work after the driver has
// visited every package (packages arrive in `go list -deps` dependency
// order, so a package's facts are always exported before its
// dependents run). It also inventories every justified suppression
// directive the run encountered — the raw material of the suppression
// budget check.
//
// The store is driver-scoped and single-goroutine: analyzers run
// sequentially, so no locking is needed.
type FactStore struct {
	facts      map[string][]Fact
	directives []Directive
}

// Fact is one exported datum: which package produced it and an
// analyzer-defined value.
type Fact struct {
	Pkg   string
	Value any
}

// Directive is one justified //dwlint:ignore suppression.
type Directive struct {
	Pos    token.Position
	Names  []string // analyzer names, sorted; "all" suppresses everything
	Reason string
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{facts: map[string][]Fact{}}
}

func (s *FactStore) add(analyzer, pkg string, v any) {
	s.facts[analyzer] = append(s.facts[analyzer], Fact{Pkg: pkg, Value: v})
}

// Facts returns every fact the named analyzer exported, in package
// visit order.
func (s *FactStore) Facts(analyzer string) []Fact {
	return s.facts[analyzer]
}

// Directives returns every justified suppression directive seen, sorted
// by position.
func (s *FactStore) Directives() []Directive {
	ds := append([]Directive(nil), s.directives...)
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i].Pos, ds[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	return ds
}

// ExportFact records v for this pass's analyzer, for consumption by its
// Finish hook (or the driver) after all packages have run.
func (p *Pass) ExportFact(v any) {
	if p.facts == nil {
		return
	}
	p.facts.add(p.Analyzer.Name, p.Pkg.Path(), v)
}

// ImportedFacts returns the facts this analyzer exported while running
// over earlier packages. The driver visits packages in `go list -deps`
// order, so by the time a package runs, every one of its dependencies'
// facts is present.
func (p *Pass) ImportedFacts() []Fact {
	if p.facts == nil {
		return nil
	}
	return p.facts.Facts(p.Analyzer.Name)
}
