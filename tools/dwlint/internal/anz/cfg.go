package anz

import (
	"go/ast"
)

// CFG is a lightweight per-function control-flow graph: basic blocks of
// statements in execution order, connected by successor edges. It is the
// flow layer the concurrency analyzers (lockorder, atomicpub, goroleak)
// share — deliberately smaller than x/tools/go/cfg, but with the same
// block/successor vocabulary so porting is mechanical.
//
// Granularity: blocks hold ast.Stmt values. Control statements appear in
// the block where their condition is evaluated (an *ast.IfStmt sits in
// the block that tests its condition; an *ast.ForStmt sits in its loop
// head, so a back edge re-executes it). Function literals are opaque:
// their bodies are separate functions with separate CFGs, and the
// statement containing the literal is just an ordinary node here.
//
// The builder covers the full statement grammar — if/else ladders,
// for/range loops with break/continue (labeled included), switch with
// fallthrough, type switches, select, goto, and labeled statements.
// Calls that never return (panic, os.Exit) are treated as ordinary
// statements; the extra edges only make downstream may-analyses more
// conservative, never less sound.
type CFG struct {
	// Entry is the block control enters first; Exit is the single
	// virtual block every return and the final fallthrough edge reach.
	Entry *Block
	Exit  *Block
	// Blocks lists every block, Entry first, Exit last.
	Blocks []*Block

	where map[ast.Stmt]stmtSite
}

// Block is one basic block.
type Block struct {
	Stmts []ast.Stmt
	Succs []*Block

	index int
}

// stmtSite locates a statement inside its block.
type stmtSite struct {
	block *Block
	idx   int
}

// BuildCFG constructs the CFG of one function body.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg: &CFG{where: map[ast.Stmt]stmtSite{}},
	}
	b.cfg.Entry = b.newBlock()
	b.cfg.Exit = &Block{}
	b.cur = b.cfg.Entry
	b.labelBlocks = map[string]*Block{}
	b.stmtList(body.List)
	b.link(b.cur, b.cfg.Exit)
	for _, g := range b.gotos {
		if target, ok := b.labelBlocks[g.label]; ok {
			b.link(g.from, target)
		}
	}
	b.cfg.Exit.index = len(b.cfg.Blocks)
	b.cfg.Blocks = append(b.cfg.Blocks, b.cfg.Exit)
	return b.cfg
}

// StmtFor resolves the innermost statement (of n itself or its ancestor
// stack, outermost first) that this CFG placed in a block. It is how an
// analyzer maps an arbitrary expression node back onto the graph.
func (c *CFG) StmtFor(n ast.Node, stack []ast.Node) (ast.Stmt, bool) {
	if s, ok := n.(ast.Stmt); ok {
		if _, placed := c.where[s]; placed {
			return s, true
		}
	}
	for i := len(stack) - 1; i >= 0; i-- {
		if s, ok := stack[i].(ast.Stmt); ok {
			if _, placed := c.where[s]; placed {
				return s, true
			}
		}
	}
	return nil, false
}

// Reaches reports whether execution can flow from the point just after
// `from` to `to` — i.e. `to` executes after `from` on at least one path.
// A statement inside a loop reaches itself through the back edge.
func (c *CFG) Reaches(from, to ast.Stmt) bool {
	fs, ok := c.where[from]
	if !ok {
		return false
	}
	ts, ok := c.where[to]
	if !ok {
		return false
	}
	if fs.block == ts.block && ts.idx > fs.idx {
		return true
	}
	// BFS over successor edges starting after from's block.
	seen := make([]bool, len(c.Blocks))
	queue := append([]*Block(nil), fs.block.Succs...)
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		if seen[b.index] {
			continue
		}
		seen[b.index] = true
		if b == ts.block {
			return true
		}
		queue = append(queue, b.Succs...)
	}
	return false
}

// ---- builder ----

type pendingGoto struct {
	from  *Block
	label string
}

// loopFrame tracks the break/continue targets of one enclosing loop,
// switch, or select.
type loopFrame struct {
	label       string // of the enclosing LabeledStmt, or ""
	breakTarget *Block
	contTarget  *Block // nil for switch/select (continue passes through)
	isLoop      bool
}

type cfgBuilder struct {
	cfg         *CFG
	cur         *Block
	frames      []loopFrame
	labelBlocks map[string]*Block
	gotos       []pendingGoto
	// pendingLabel carries a label down to the loop/switch statement it
	// annotates, so `break L` / `continue L` resolve.
	pendingLabel string
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) link(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// place appends s to the current block and records its site.
func (b *cfgBuilder) place(s ast.Stmt) {
	b.cfg.where[s] = stmtSite{block: b.cur, idx: len(b.cur.Stmts)}
	b.cur.Stmts = append(b.cur.Stmts, s)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	takeLabel := func() string {
		l := b.pendingLabel
		b.pendingLabel = ""
		return l
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		// The label is both a goto target and (for loops/switches) the
		// name `break L` / `continue L` resolve against.
		target := b.newBlock()
		b.link(b.cur, target)
		b.cur = target
		b.labelBlocks[s.Label.Name] = target
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.IfStmt:
		takeLabel()
		if s.Init != nil {
			b.place(s.Init)
		}
		b.place(s) // condition evaluation
		condBlock := b.cur
		join := b.newBlock()

		thenBlock := b.newBlock()
		b.link(condBlock, thenBlock)
		b.cur = thenBlock
		b.stmtList(s.Body.List)
		b.link(b.cur, join)

		if s.Else != nil {
			elseBlock := b.newBlock()
			b.link(condBlock, elseBlock)
			b.cur = elseBlock
			b.stmt(s.Else)
			b.link(b.cur, join)
		} else {
			b.link(condBlock, join)
		}
		b.cur = join

	case *ast.ForStmt:
		label := takeLabel()
		if s.Init != nil {
			b.place(s.Init)
		}
		head := b.newBlock()
		b.link(b.cur, head)
		b.cur = head
		b.place(s) // condition evaluation (or unconditional head)
		join := b.newBlock()
		var post *Block
		contTarget := head
		if s.Post != nil {
			post = b.newBlock()
			contTarget = post
		}
		b.frames = append(b.frames, loopFrame{label: label, breakTarget: join, contTarget: contTarget, isLoop: true})
		body := b.newBlock()
		b.link(head, body)
		b.cur = body
		b.stmtList(s.Body.List)
		if post != nil {
			b.link(b.cur, post)
			post.Stmts = append(post.Stmts, s.Post)
			b.cfg.where[s.Post] = stmtSite{block: post, idx: 0}
			b.link(post, head)
		} else {
			b.link(b.cur, head)
		}
		if s.Cond != nil {
			b.link(head, join) // loop can exit when the condition fails
		}
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = join

	case *ast.RangeStmt:
		label := takeLabel()
		head := b.newBlock()
		b.link(b.cur, head)
		b.cur = head
		b.place(s)
		join := b.newBlock()
		b.link(head, join) // range may be empty
		b.frames = append(b.frames, loopFrame{label: label, breakTarget: join, contTarget: head, isLoop: true})
		body := b.newBlock()
		b.link(head, body)
		b.cur = body
		b.stmtList(s.Body.List)
		b.link(b.cur, head)
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = join

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		label := takeLabel()
		var init ast.Stmt
		var body *ast.BlockStmt
		switch sw := s.(type) {
		case *ast.SwitchStmt:
			init, body = sw.Init, sw.Body
		case *ast.TypeSwitchStmt:
			init, body = sw.Init, sw.Body
		}
		if init != nil {
			b.place(init)
		}
		b.place(s) // tag evaluation
		head := b.cur
		join := b.newBlock()
		b.frames = append(b.frames, loopFrame{label: label, breakTarget: join})
		var caseBlocks []*Block
		hasDefault := false
		for _, cc := range body.List {
			cb := b.newBlock()
			b.link(head, cb)
			caseBlocks = append(caseBlocks, cb)
			if clause, ok := cc.(*ast.CaseClause); ok && clause.List == nil {
				hasDefault = true
			}
		}
		for i, cc := range body.List {
			clause := cc.(*ast.CaseClause)
			b.cur = caseBlocks[i]
			// fallthrough (last statement) links to the next case body.
			fallsThrough := false
			for _, cs := range clause.Body {
				if br, ok := cs.(*ast.BranchStmt); ok && br.Tok.String() == "fallthrough" {
					fallsThrough = true
					continue
				}
				b.stmt(cs)
			}
			if fallsThrough && i+1 < len(caseBlocks) {
				b.link(b.cur, caseBlocks[i+1])
			} else {
				b.link(b.cur, join)
			}
		}
		if !hasDefault {
			b.link(head, join)
		}
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = join

	case *ast.SelectStmt:
		label := takeLabel()
		b.place(s)
		head := b.cur
		join := b.newBlock()
		b.frames = append(b.frames, loopFrame{label: label, breakTarget: join})
		for _, cc := range s.Body.List {
			clause := cc.(*ast.CommClause)
			cb := b.newBlock()
			b.link(head, cb)
			b.cur = cb
			if clause.Comm != nil {
				b.place(clause.Comm)
			}
			b.stmtList(clause.Body)
			b.link(b.cur, join)
		}
		b.frames = b.frames[:len(b.frames)-1]
		if len(s.Body.List) == 0 {
			b.cur = b.newBlock() // select {} blocks forever: no edge out
		} else {
			b.cur = join
		}

	case *ast.ReturnStmt:
		b.place(s)
		b.link(b.cur, b.cfg.Exit)
		b.cur = b.newBlock() // unreachable continuation

	case *ast.BranchStmt:
		b.place(s)
		switch s.Tok.String() {
		case "break":
			if t := b.findFrame(s, false); t != nil {
				b.link(b.cur, t)
			}
			b.cur = b.newBlock()
		case "continue":
			if t := b.findFrame(s, true); t != nil {
				b.link(b.cur, t)
			}
			b.cur = b.newBlock()
		case "goto":
			b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: s.Label.Name})
			b.cur = b.newBlock()
		}
		// fallthrough is handled by the switch builder.

	default:
		// Ordinary straight-line statement (assignments, calls, sends,
		// declarations, go, defer, incdec, empty).
		b.place(s)
	}
}

// findFrame resolves the target of a break (wantLoop=false: innermost
// breakable; labeled: matching frame) or continue (innermost loop).
func (b *cfgBuilder) findFrame(s *ast.BranchStmt, isContinue bool) *Block {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := b.frames[i]
		if label != "" && f.label != label {
			continue
		}
		if isContinue {
			if !f.isLoop {
				continue
			}
			return f.contTarget
		}
		return f.breakTarget
	}
	return nil
}
