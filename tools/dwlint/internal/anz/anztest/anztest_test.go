package anztest

import (
	"fmt"
	"go/ast"
	"strings"
	"testing"

	"dwmaxerr/tools/dwlint/internal/anz"
)

// boomAnalyzer flags every call to a function literally named boom —
// just enough surface to drive the runner through its failure modes.
var boomAnalyzer = &anz.Analyzer{
	Name: "boom",
	Doc:  "test analyzer: flags calls to boom",
	Run: func(pass *anz.Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "boom" {
						pass.Reportf(call.Pos(), "call to boom")
					}
				}
				return true
			})
		}
		return nil
	},
}

// fakeTB records what the runner would have failed with.
type fakeTB struct {
	errors []string
	fatals []string
}

func (f *fakeTB) Helper() {}
func (f *fakeTB) Errorf(format string, args ...interface{}) {
	f.errors = append(f.errors, fmt.Sprintf(format, args...))
}
func (f *fakeTB) Fatalf(format string, args ...interface{}) {
	f.fatals = append(f.fatals, fmt.Sprintf(format, args...))
}

// Multiple findings on one line are claimed by multiple want regexes.
func TestRunnerMultiFinding(t *testing.T) { Run(t, boomAnalyzer, "multifinding") }

// A justified directive removes the diagnostic, so its line carries no
// want; unsuppressed findings on other lines still must match.
func TestRunnerSuppression(t *testing.T) { Run(t, boomAnalyzer, "suppressed") }

func TestRunnerReportsMismatches(t *testing.T) {
	tb := &fakeTB{}
	run(tb, boomAnalyzer, "mismatch")
	if len(tb.fatals) != 0 {
		t.Fatalf("mismatch fixture should not be fatal: %v", tb.fatals)
	}
	var unexpected, unmatched bool
	for _, e := range tb.errors {
		if strings.Contains(e, "unexpected diagnostic") && strings.Contains(e, "call to boom") {
			unexpected = true
		}
		if strings.Contains(e, "expected diagnostic matching") && strings.Contains(e, "never produced") {
			unmatched = true
		}
	}
	if !unexpected || !unmatched {
		t.Fatalf("want both an unexpected-diagnostic and an unmatched-want error, got %v", tb.errors)
	}
}

func TestRunnerBrokenFixtureFailsLoudly(t *testing.T) {
	tb := &fakeTB{}
	run(tb, boomAnalyzer, "broken")
	if len(tb.fatals) == 0 {
		t.Fatal("a fixture that does not build must fail the run, not produce zero findings")
	}
	if !strings.Contains(tb.fatals[0], "loading fixture") {
		t.Fatalf("failure should name the load step, got %q", tb.fatals[0])
	}
	if len(tb.errors) != 0 {
		t.Fatalf("no diagnostics should be compared after a load failure: %v", tb.errors)
	}
}

func TestRunnerUnknownFixture(t *testing.T) {
	tb := &fakeTB{}
	run(tb, boomAnalyzer, "no-such-fixture")
	if len(tb.fatals) == 0 {
		t.Fatal("a missing fixture directory must fail loudly")
	}
}
