package mismatch

func boom() {}

// Exercises both runner failure modes: a diagnostic with no want on its
// line, and a want no diagnostic ever matches.
func f() {
	boom()
	_ = 1 // want "never produced"
}
