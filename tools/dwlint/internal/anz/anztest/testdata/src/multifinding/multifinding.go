package multifinding

func boom() {}

func f() {
	boom() // want "call to boom"
	if true {
		boom() // want "call to boom"
	}
}

// Two findings on one line need two want regexes.
func g() { boom(); boom() } // want "call to boom" "call to boom"
