package suppressed

func boom() {}

func f() {
	//dwlint:ignore boom -- fixture: this call is intentionally quiet
	boom()
	boom() // want "call to boom"
}
