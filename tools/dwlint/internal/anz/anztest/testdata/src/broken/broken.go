package broken

// This fixture does not type-check: the runner must fail loudly, never
// report "zero findings" over a package that was silently skipped.
func f() int { return "not an int" }
