// Package anztest runs an analyzer over a fixture package and checks its
// diagnostics against `// want "regexp"` comments, the analysistest
// convention: every diagnostic must match a want on its line, and every
// want must be matched by a diagnostic.
package anztest

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"dwmaxerr/tools/dwlint/internal/anz"
)

// TB is the slice of testing.TB the runner needs. It exists so the
// runner itself is testable: anztest_test.go drives run with a fake TB
// and asserts the failure modes (a fixture that does not build must
// fail loudly, never report zero findings).
type TB interface {
	Helper()
	Errorf(format string, args ...interface{})
	Fatalf(format string, args ...interface{})
}

// want is one expectation parsed from a fixture comment.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run loads ./testdata/src/<fixture> (relative to the calling test's
// package directory) and asserts a's diagnostics line up with the
// fixture's want comments.
func Run(t *testing.T, a *anz.Analyzer, fixture string) {
	t.Helper()
	run(t, a, fixture)
}

// run is Run against any TB.
func run(t TB, a *anz.Analyzer, fixture string) {
	t.Helper()
	pkgs, err := anz.Load(".", "./testdata/src/"+fixture)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
		return
	}
	if len(pkgs) == 0 {
		t.Fatalf("fixture %s matched no packages", fixture)
		return
	}

	var wants []*want
	for _, pkg := range pkgs {
		for _, f := range append(append([]*ast.File(nil), pkg.Files...), pkg.TestFiles...) {
			ws, err := parseWants(pkg.Fset, f)
			if err != nil {
				t.Fatalf("%v", err)
				return
			}
			wants = append(wants, ws...)
		}
	}

	diags, err := anz.RunAnalyzers(pkgs, []*anz.Analyzer{a}, nil)
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
		return
	}

	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("unexpected diagnostic at %s: %s", d.Pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// claim marks the first unmatched want on d's line whose regexp matches.
func claim(wants []*want, d anz.Diagnostic) bool {
	for _, w := range wants {
		if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// wantRe matches `// want "re"` with one or more quoted regexps.
var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

func parseWants(fset *token.FileSet, f *ast.File) ([]*want, error) {
	var wants []*want
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := wantRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pos := fset.Position(c.Pos())
			rest := strings.TrimSpace(m[1])
			for rest != "" {
				if rest[0] != '"' && rest[0] != '`' {
					return nil, fmt.Errorf("%s:%d: malformed want comment (expected quoted regexp): %s", pos.Filename, pos.Line, c.Text)
				}
				q, err := strconv.QuotedPrefix(rest)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: malformed want comment: %v", pos.Filename, pos.Line, err)
				}
				pat, err := strconv.Unquote(q)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: malformed want comment: %v", pos.Filename, pos.Line, err)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
				}
				wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				rest = strings.TrimSpace(rest[len(q):])
			}
		}
	}
	return wants, nil
}
