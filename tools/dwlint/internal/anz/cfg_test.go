package anz

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseFunc parses src as the body of one function and returns its CFG
// plus a lookup from marker comment text (on the statement's line) to
// statement. Markers are written as /*name*/ prefixes on statements.
func parseFunc(t *testing.T, src string) (*CFG, map[string]ast.Stmt) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "cfg_fixture.go", "package p\nfunc f() {\n"+src+"\n}", parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fn := file.Decls[0].(*ast.FuncDecl)
	cfg := BuildCFG(fn.Body)

	// Map marker comments to the statement starting on the same line.
	markers := map[int]string{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, "/*") {
				name := strings.Trim(c.Text, "/* ")
				markers[fset.Position(c.Pos()).Line] = name
			}
		}
	}
	stmts := map[string]ast.Stmt{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		s, ok := n.(ast.Stmt)
		if !ok {
			return true
		}
		if name, ok := markers[fset.Position(s.Pos()).Line]; ok {
			if _, placed := cfg.where[s]; placed {
				if _, taken := stmts[name]; !taken {
					stmts[name] = s
				}
			}
		}
		return true
	})
	return cfg, stmts
}

func TestCFGStraightLine(t *testing.T) {
	cfg, m := parseFunc(t, `
		/*a*/ x := 1
		/*b*/ x++
		/*c*/ _ = x
	`)
	if !cfg.Reaches(m["a"], m["b"]) || !cfg.Reaches(m["b"], m["c"]) || !cfg.Reaches(m["a"], m["c"]) {
		t.Fatal("straight-line order not reachable")
	}
	if cfg.Reaches(m["c"], m["a"]) {
		t.Fatal("backwards reachability in straight-line code")
	}
}

func TestCFGIfElse(t *testing.T) {
	cfg, m := parseFunc(t, `
		x := 1
		if x > 0 {
			/*then*/ x = 2
		} else {
			/*else*/ x = 3
		}
		/*after*/ _ = x
	`)
	if cfg.Reaches(m["then"], m["else"]) || cfg.Reaches(m["else"], m["then"]) {
		t.Fatal("branch arms reach each other")
	}
	if !cfg.Reaches(m["then"], m["after"]) || !cfg.Reaches(m["else"], m["after"]) {
		t.Fatal("arms do not reach the join")
	}
}

func TestCFGEarlyReturn(t *testing.T) {
	cfg, m := parseFunc(t, `
		x := 1
		if x > 0 {
			/*ret*/ return
		}
		/*after*/ _ = x
	`)
	if cfg.Reaches(m["ret"], m["after"]) {
		t.Fatal("code after return is reachable from it")
	}
}

func TestCFGLoopBackEdge(t *testing.T) {
	cfg, m := parseFunc(t, `
		for i := 0; i < 3; i++ {
			/*body*/ _ = i
		}
		/*after*/ x := 1
		_ = x
	`)
	if !cfg.Reaches(m["body"], m["body"]) {
		t.Fatal("loop body does not reach itself via the back edge")
	}
	if !cfg.Reaches(m["body"], m["after"]) {
		t.Fatal("loop body does not reach the code after the loop")
	}
}

func TestCFGInfiniteLoopWithBreak(t *testing.T) {
	cfg, m := parseFunc(t, `
		x := 1
		for {
			if x > 0 {
				/*brk*/ break
			}
			/*body*/ x++
		}
		/*after*/ _ = x
	`)
	if !cfg.Reaches(m["brk"], m["after"]) {
		t.Fatal("break does not reach the code after the loop")
	}
	if !cfg.Reaches(m["body"], m["brk"]) {
		t.Fatal("loop body does not iterate back to the break path")
	}
}

func TestCFGInfiniteLoopNoExit(t *testing.T) {
	cfg, m := parseFunc(t, `
		x := 1
		for {
			/*body*/ x++
		}
		/*after*/ _ = x
	`)
	if cfg.Reaches(m["body"], m["after"]) {
		t.Fatal("for{} with no break must never reach the code after it")
	}
}

func TestCFGSelect(t *testing.T) {
	cfg, m := parseFunc(t, `
		ch := make(chan int)
		done := make(chan int)
		for {
			select {
			case <-ch:
				/*work*/ _ = 1
			case <-done:
				/*ret*/ return
			}
			/*after*/ _ = 2
		}
	`)
	if cfg.Reaches(m["ret"], m["after"]) {
		t.Fatal("return arm falls through to the loop body tail")
	}
	if !cfg.Reaches(m["work"], m["after"]) || !cfg.Reaches(m["after"], m["work"]) {
		t.Fatal("select work arm and loop tail do not cycle")
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	cfg, m := parseFunc(t, `
		x := 1
		switch x {
		case 1:
			/*one*/ x = 10
			fallthrough
		case 2:
			/*two*/ x = 20
		default:
			/*def*/ x = 30
		}
		/*after*/ _ = x
	`)
	if !cfg.Reaches(m["one"], m["two"]) {
		t.Fatal("fallthrough edge missing")
	}
	if cfg.Reaches(m["two"], m["def"]) {
		t.Fatal("case bodies must not fall into default without fallthrough")
	}
	for _, name := range []string{"one", "two", "def"} {
		if !cfg.Reaches(m[name], m["after"]) {
			t.Fatalf("case %s does not reach the join", name)
		}
	}
}

func TestCFGLabeledBreak(t *testing.T) {
	cfg, m := parseFunc(t, `
		x := 1
	outer:
		for {
			for {
				if x > 0 {
					/*brk*/ break outer
				}
				/*inner*/ x++
			}
		}
		/*after*/ _ = x
	`)
	if !cfg.Reaches(m["brk"], m["after"]) {
		t.Fatal("labeled break does not exit the outer loop")
	}
	if !cfg.Reaches(m["inner"], m["brk"]) {
		t.Fatal("inner body does not iterate back to the labeled-break path")
	}
}

func TestCFGNestedInfiniteLoopUnlabeledBreak(t *testing.T) {
	cfg, m := parseFunc(t, `
		x := 1
		for {
			for {
				if x > 0 {
					/*brk*/ break
				}
			}
			/*outerBody*/ x++
		}
		/*after*/ _ = x
	`)
	if !cfg.Reaches(m["brk"], m["outerBody"]) {
		t.Fatal("unlabeled break does not land in the outer loop body")
	}
	if cfg.Reaches(m["brk"], m["after"]) {
		t.Fatal("unlabeled break must not exit the outer infinite loop")
	}
}

func TestCFGStmtFor(t *testing.T) {
	cfg, m := parseFunc(t, `
		x := 1
		if x > 1 {
			/*call*/ println(x + 2)
		}
		_ = x
	`)
	// An expression nested in the call maps back to the ExprStmt.
	var inner ast.Node
	var stack []ast.Node
	InspectStack(m["call"], func(n ast.Node, st []ast.Node) bool {
		if b, ok := n.(*ast.BinaryExpr); ok {
			inner = b
			stack = append([]ast.Node{m["call"]}, st...)
		}
		return true
	})
	if inner == nil {
		t.Fatal("binary expr not found")
	}
	s, ok := cfg.StmtFor(inner, stack)
	if !ok || s != m["call"] {
		t.Fatalf("StmtFor resolved %v, want the marked ExprStmt", s)
	}
}
