package anz

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, parsed, and type-checked package — the subset
// of x/tools/go/packages.Package the analyzers need.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	// TestFiles are the package's test files (internal and external),
	// parsed but not type-checked: syntactic checks (chaos spec strings,
	// suppression directives) see them, type-driven ones do not.
	TestFiles []*ast.File
	Types     *types.Package
	Info      *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath   string
	Dir          string
	Export       string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Standard     bool
	DepOnly      bool
	Incomplete   bool
	Error        *struct{ Err string }
}

// Load resolves patterns with the go command (run in dir), parses the
// matched packages from source, and type-checks them against the
// compiler's export data for every dependency. It needs no network: the
// go command compiles export data locally, and `go list -deps -export`
// hands back the file path for each dependency, stdlib included.
//
// Only non-test GoFiles are analyzed. Test files routinely violate the
// contracts on purpose (the arena clobber-after-emit tests retain emitted
// slices to prove the engine copied), so they are out of scope by design.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Dir,Export,GoFiles,TestGoFiles,XTestGoFiles,Standard,DepOnly,Incomplete,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}

	exports := map[string]string{} // import path -> export data file
	var targets []listPkg
	dec := json.NewDecoder(&stdout)
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: package %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("parsing %s: %w", name, err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
		conf := types.Config{Importer: imp, FakeImportC: true}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %w", t.ImportPath, err)
		}
		var testFiles []*ast.File
		for _, name := range append(append([]string(nil), t.TestGoFiles...), t.XTestGoFiles...) {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("parsing %s: %w", name, err)
			}
			testFiles = append(testFiles, f)
		}
		pkgs = append(pkgs, &Package{
			PkgPath:   t.ImportPath,
			Dir:       t.Dir,
			Fset:      fset,
			Files:     files,
			TestFiles: testFiles,
			Types:     tpkg,
			Info:      info,
		})
	}
	return pkgs, nil
}
