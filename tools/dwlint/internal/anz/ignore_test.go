package anz

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseOne(t *testing.T, src string) (*token.FileSet, ignoreIndex, []Diagnostic) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	var diags []Diagnostic
	ix := buildIgnoreIndex(fset, []*ast.File{f}, &diags, NewFactStore())
	return fset, ix, diags
}

func TestIgnoreDirectiveSuppresses(t *testing.T) {
	src := `package p

//dwlint:ignore spanend -- span outlives this helper by design
var x = 1

//dwlint:ignore all -- generated code
var y = 2
`
	fset, ix, diags := parseOne(t, src)
	_ = fset
	if len(diags) != 0 {
		t.Fatalf("unexpected diagnostics: %v", diags)
	}
	if !ix.suppressed(token.Position{Filename: "fix.go", Line: 4}, "spanend") {
		t.Error("directive on line 3 should suppress spanend on line 4")
	}
	if !ix.suppressed(token.Position{Filename: "fix.go", Line: 3}, "spanend") {
		t.Error("directive should suppress on its own line")
	}
	if ix.suppressed(token.Position{Filename: "fix.go", Line: 4}, "lockguard") {
		t.Error("directive must not suppress other analyzers")
	}
	if ix.suppressed(token.Position{Filename: "fix.go", Line: 5}, "spanend") {
		t.Error("directive must not reach two lines down")
	}
	if !ix.suppressed(token.Position{Filename: "fix.go", Line: 7}, "lockguard") {
		t.Error("'all' directive should suppress every analyzer")
	}
}

func TestIgnoreDirectiveNeedsReason(t *testing.T) {
	src := `package p

//dwlint:ignore spanend
var x = 1
`
	_, ix, diags := parseOne(t, src)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "justification") {
		t.Fatalf("want one missing-justification diagnostic, got %v", diags)
	}
	if ix.suppressed(token.Position{Filename: "fix.go", Line: 4}, "spanend") {
		t.Error("reasonless directive must not suppress anything")
	}
}
