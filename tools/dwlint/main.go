// Command dwlint is the repo's custom static analyzer suite. It loads
// the packages matched by its argument patterns (default ./...), runs
// every registered contract checker over them, and exits nonzero if any
// diagnostic survives. CI runs it as a blocking gate:
//
//	go run ./tools/dwlint ./...
//
// Suppress a finding only with a justified directive on or above the
// offending line:
//
//	//dwlint:ignore <analyzer>[,<analyzer>] -- <reason>
//
// The six checkers and the contracts they pin are documented in
// DESIGN.md §10 and in each analyzer's Doc string (dwlint -list).
package main

import (
	"fmt"
	"os"

	"dwmaxerr/tools/dwlint/internal/anz"
	"dwmaxerr/tools/dwlint/internal/checkers"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dwlint:", err)
		os.Exit(2)
	}
}

func run(args []string) error {
	analyzers := checkers.All()
	if len(args) > 0 && args[0] == "-list" {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return nil
	}
	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := anz.Load(".", patterns...)
	if err != nil {
		return err
	}
	diags, err := anz.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		return err
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "dwlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
	return nil
}
