// Command dwlint is the repo's custom static analyzer suite. It loads
// the packages matched by its argument patterns (default ./...), runs
// every registered contract checker over them, and exits nonzero if any
// diagnostic survives. CI runs it as a blocking gate:
//
//	go run ./tools/dwlint ./...
//
// Flags:
//
//	-list                 print the analyzers and exit
//	-json                 emit diagnostics as a JSON array on stdout
//	-lockgraph <file>     write the whole-program lock-acquisition
//	                      graph as Graphviz DOT (CI uploads it as an
//	                      artifact)
//	-suppressions <file>  compare the //dwlint:ignore directives the run
//	                      encountered against a committed budget file;
//	                      untracked additions fail the run, stale
//	                      entries warn
//
// Suppress a finding only with a justified directive on or above the
// offending line:
//
//	//dwlint:ignore <analyzer>[,<analyzer>] -- <reason>
//
// The checkers and the contracts they pin are documented in DESIGN.md
// §10 and in each analyzer's Doc string (dwlint -list).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"dwmaxerr/tools/dwlint/internal/anz"
	"dwmaxerr/tools/dwlint/internal/checkers"
)

func main() {
	code, err := run(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "dwlint:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func run(args []string) (int, error) {
	fs := flag.NewFlagSet("dwlint", flag.ContinueOnError)
	var (
		list         = fs.Bool("list", false, "print the analyzers and exit")
		jsonOut      = fs.Bool("json", false, "emit diagnostics as JSON")
		lockgraph    = fs.String("lockgraph", "", "write the lock-acquisition graph as DOT to `file`")
		suppressions = fs.String("suppressions", "", "check //dwlint:ignore directives against budget `file`")
		suppDump     = fs.Bool("suppressions-dump", false, "print the //dwlint:ignore inventory in budget-file format and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2, err
	}

	analyzers := checkers.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0, nil
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := anz.Load(".", patterns...)
	if err != nil {
		return 0, err
	}
	store := anz.NewFactStore()
	diags, err := anz.RunAnalyzers(pkgs, analyzers, store)
	if err != nil {
		return 0, err
	}

	if *suppDump {
		for _, d := range store.Directives() {
			fmt.Println(suppressionKey(d))
		}
		return 0, nil
	}

	if *jsonOut {
		if err := writeJSON(os.Stdout, diags); err != nil {
			return 0, err
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}

	if *lockgraph != "" {
		if err := os.WriteFile(*lockgraph, checkers.LockGraphDOT(store), 0o644); err != nil {
			return 0, fmt.Errorf("writing lock graph: %v", err)
		}
	}

	exit := 0
	if *suppressions != "" {
		bad, err := checkSuppressionBudget(os.Stderr, store, *suppressions)
		if err != nil {
			return 0, err
		}
		if bad {
			exit = 1
		}
	}

	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "dwlint: %d finding(s)\n", len(diags))
		exit = 1
	}
	return exit, nil
}

// jsonDiag is the machine-readable diagnostic shape (-json), consumed
// by the GitHub problem matcher in .github/dwlint-matcher.json.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
	Analyzer string `json:"analyzer"`
}

func writeJSON(w *os.File, diags []anz.Diagnostic) error {
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiag{
			File:     relPath(d.Pos.Filename),
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Message:  d.Message,
			Analyzer: d.Analyzer,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// checkSuppressionBudget compares the justified //dwlint:ignore
// directives this run saw against the committed budget file. Every
// directive must appear in the budget (adding a suppression is a
// reviewed act: run scripts/lint_suppressions.sh to regenerate);
// budget entries no longer present in the code only warn, so deleting
// code never breaks the gate.
func checkSuppressionBudget(w *os.File, store *anz.FactStore, budgetFile string) (bad bool, err error) {
	inCode := map[string]int{}
	for _, d := range store.Directives() {
		inCode[suppressionKey(d)]++
	}

	inBudget := map[string]int{}
	data, err := os.ReadFile(budgetFile)
	if err != nil {
		return false, fmt.Errorf("reading suppression budget: %v", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		inBudget[line]++
	}

	for _, key := range sortedKeys(inCode) {
		if inCode[key] > inBudget[key] {
			fmt.Fprintf(w, "dwlint: untracked suppression (%d in code, %d budgeted): %s\n",
				inCode[key], inBudget[key], key)
			bad = true
		}
	}
	for _, key := range sortedKeys(inBudget) {
		if inBudget[key] > inCode[key] {
			fmt.Fprintf(w, "dwlint: stale suppression budget entry (remove it): %s\n", key)
		}
	}
	if bad {
		fmt.Fprintf(w, "dwlint: suppressions must be budgeted; regenerate with scripts/lint_suppressions.sh after review\n")
	}
	return bad, nil
}

// suppressionKey renders a directive in the budget file's line format.
// Line numbers are deliberately omitted — code above a suppression may
// move it without changing what is being suppressed.
func suppressionKey(d anz.Directive) string {
	return fmt.Sprintf("%s %s -- %s", relPath(d.Pos.Filename), strings.Join(d.Names, ","), d.Reason)
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func relPath(p string) string {
	wd, err := os.Getwd()
	if err != nil {
		return p
	}
	if rel, err := filepath.Rel(wd, p); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return p
}
