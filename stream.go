package dwmaxerr

import (
	"io"

	"dwmaxerr/internal/synopsis"
	"dwmaxerr/internal/wavelet"
)

// Bounded is an approximate answer with a guaranteed enclosure derived
// from a synopsis' maximum-error guarantee: the exact value lies within
// [Approx-Radius, Approx+Radius].
type Bounded = synopsis.Bounded

// Streamer computes the wavelet decomposition of a stream one value at a
// time in O(log N) memory, emitting each coefficient as soon as its
// support has passed.
type Streamer = wavelet.Streamer

// NewStreamer builds a one-pass transformer for a stream of exactly n
// values (a power of two); emit receives every (error-tree index, value)
// coefficient exactly once, node 0 last.
func NewStreamer(n int, emit func(index int, value float64)) (*Streamer, error) {
	return wavelet.NewStreamer(n, emit)
}

// StreamConventional consumes a stream and returns its conventional
// (L2-optimal) B-term synopsis in one pass with O(B + log N) memory.
func StreamConventional(n, budget int, next func() (float64, bool)) (*Synopsis, error) {
	tk, err := wavelet.NewTopKStream(n, budget)
	if err != nil {
		return nil, err
	}
	for {
		v, ok := next()
		if !ok {
			break
		}
		if err := tk.Push(v); err != nil {
			return nil, err
		}
	}
	indices, values, err := tk.Finish()
	if err != nil {
		return nil, err
	}
	s := synopsis.New(n)
	for i, idx := range indices {
		s.Terms = append(s.Terms, synopsis.Coefficient{Index: idx, Value: values[i]})
	}
	s.Normalize()
	return s, nil
}

// WriteSynopsis serializes a synopsis in the compact binary format.
func WriteSynopsis(w io.Writer, s *Synopsis) error {
	_, err := s.WriteTo(w)
	return err
}

// ReadSynopsis deserializes a synopsis written by WriteSynopsis.
func ReadSynopsis(r io.Reader) (*Synopsis, error) {
	return synopsis.Read(r)
}
